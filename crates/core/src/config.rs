//! Runtime configuration: machine choice plus the measured-constant knobs
//! of the Pagoda implementation (entry sizes, scheduler-warp cycle costs,
//! host API costs). Defaults approximate the paper's Titan X testbed; the
//! benchmark harness never tunes these per experiment — one calibration
//! serves every figure.

use desim::Dur;
use gpu_sim::DeviceConfig;
use pcie::PcieConfig;

/// Full Pagoda runtime configuration.
#[derive(Debug, Clone)]
pub struct PagodaConfig {
    /// The simulated GPU.
    pub device: DeviceConfig,
    /// The simulated interconnect.
    pub pcie: PcieConfig,
    /// TaskTable rows per column (paper: 32).
    pub rows_per_column: u32,
    /// Bytes of one TaskTable entry as copied over PCIe (parameters,
    /// kernel pointer, shape, flags).
    pub entry_bytes: u64,
    /// Host CPU work per `taskSpawn` call (find entry, marshal arguments,
    /// enqueue the copy).
    pub spawn_cpu_cost: Dur,
    /// `wait`/`waitAll` polling timeout before forcing a TaskTable
    /// copy-back (paper §4.2.2, "these functions therefore use a timeout").
    pub wait_timeout: Dur,
    /// Scheduler-warp cycles to scan the column and pick up one action.
    /// Added to every action below.
    pub sched_scan_cycles: u64,
    /// Cycles for the ready-chain update (Algorithm 1, lines 5-13).
    pub chain_update_cycles: u64,
    /// Fixed cycles of one `pSched` invocation (Algorithm 2 setup).
    pub psched_cycles_base: u64,
    /// Additional `pSched` cycles per warp placed.
    pub psched_cycles_per_warp: u64,
    /// Cycles for one shared-memory allocation attempt, including the
    /// deferred-deallocation drain (Algorithm 1, lines 21-24).
    pub smem_alloc_cycles: u64,
    /// Cycles to allocate a named barrier ID.
    pub barrier_alloc_cycles: u64,
    /// CPI of scheduler-warp bookkeeping code (shared-memory resident
    /// tables, some divergence).
    pub sched_cpi: f64,
    /// Extra cycles appended to every executor warp for the completion
    /// epilogue (Algorithm 1, lines 34-43: dealloc marking, doneCtr,
    /// flag clears).
    pub exec_epilogue_cycles: u64,
    /// Bytes of the flag-only host write used by the final-task flush.
    pub flag_write_bytes: u64,
}

impl Default for PagodaConfig {
    fn default() -> Self {
        PagodaConfig {
            device: DeviceConfig::titan_x(),
            pcie: PcieConfig::default(),
            rows_per_column: 32,
            entry_bytes: 192,
            spawn_cpu_cost: Dur::from_ns(1200),
            wait_timeout: Dur::from_us(20),
            sched_scan_cycles: 120,
            chain_update_cycles: 150,
            psched_cycles_base: 100,
            psched_cycles_per_warp: 40,
            smem_alloc_cycles: 250,
            barrier_alloc_cycles: 60,
            sched_cpi: 2.0,
            exec_epilogue_cycles: 80,
            flag_write_bytes: 8,
        }
    }
}

impl PagodaConfig {
    /// MTBs the MasterKernel launches: two per SMM (paper §4.1).
    pub fn num_mtbs(&self) -> u32 {
        self.device.spec.num_sms * 2
    }

    /// Total TaskTable entries.
    pub fn total_entries(&self) -> u32 {
        self.num_mtbs() * self.rows_per_column
    }

    /// Bytes of the buddy shared-memory pool each MTB statically
    /// reserves: the largest power-of-two slice of its half of the SMM's
    /// shared memory, capped at the paper's 32 KB (Titan X: exactly
    /// 32 KB; K40: 16 KB of its 24 KB half, the rest holds the
    /// scheduling structures). The runtime sizes its pools from this;
    /// capacity checkers bound `MtbSample::free_smem` with it.
    pub fn mtb_pool_bytes(&self) -> u32 {
        let per_mtb = self.device.spec.smem_per_sm / 2;
        if per_mtb >= 32 * 1024 {
            32 * 1024
        } else {
            1u32 << (31 - per_mtb.leading_zeros())
        }
    }

    /// Starts a builder seeded with the defaults; [`build`](PagodaConfigBuilder::build)
    /// validates the result.
    pub fn builder() -> PagodaConfigBuilder {
        PagodaConfigBuilder {
            cfg: PagodaConfig::default(),
        }
    }

    /// Checks the invariants [`PagodaConfigBuilder::build`] enforces.
    /// Hand-assembled configurations can call this before constructing a
    /// runtime; the runtime itself assumes a valid configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rows_per_column == 0 {
            return Err(ConfigError::ZeroRows);
        }
        if self.rows_per_column > MAX_ROWS_PER_COLUMN {
            return Err(ConfigError::TooManyRows {
                rows: self.rows_per_column,
                max: MAX_ROWS_PER_COLUMN,
            });
        }
        if self.entry_bytes == 0 {
            return Err(ConfigError::ZeroEntryBytes);
        }
        if !(self.sched_cpi.is_finite() && self.sched_cpi > 0.0) {
            return Err(ConfigError::NonPositiveCpi {
                cpi: self.sched_cpi,
            });
        }
        if self.wait_timeout == Dur::ZERO {
            return Err(ConfigError::ZeroWaitTimeout);
        }
        Ok(())
    }
}

/// Upper bound on TaskTable rows per column. The scheduler warp scans its
/// whole column every pass; beyond this the scan cost model (a flat
/// `sched_scan_cycles`) stops being credible.
pub const MAX_ROWS_PER_COLUMN: u32 = 1024;

/// Why a configuration build was rejected — by
/// [`PagodaConfigBuilder::build`] for a single runtime, or by the cluster
/// layer's `ClusterConfig` validation for a fleet (the fleet variants live
/// here so callers match on one error enum across both layers).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `rows_per_column == 0`: the TaskTable would hold no entries.
    ZeroRows,
    /// `rows_per_column` exceeds [`MAX_ROWS_PER_COLUMN`].
    TooManyRows {
        /// Requested rows.
        rows: u32,
        /// The cap.
        max: u32,
    },
    /// `entry_bytes == 0`: entry copies would be free, hiding the PCIe
    /// cost the paper measures.
    ZeroEntryBytes,
    /// `sched_cpi` is not a finite positive number.
    NonPositiveCpi {
        /// The offending value.
        cpi: f64,
    },
    /// `wait_timeout == 0`: `wait`/`waitAll` would poll without advancing
    /// time and trip the livelock guard.
    ZeroWaitTimeout,
    /// A fleet configuration named no devices.
    NoDevices,
    /// Two fleet devices share an id; ids key observability streams and
    /// reports, so they must be unique.
    DuplicateDeviceId {
        /// The repeated id.
        id: u32,
    },
    /// A fleet named explicit device ids but not one per device.
    DeviceIdCountMismatch {
        /// Ids given.
        ids: usize,
        /// Devices configured.
        devices: usize,
    },
    /// The fleet run-ahead window is zero: devices could never simulate
    /// past a synchronization point, so time would not advance.
    ZeroRunAhead,
    /// One device's [`PagodaConfig`] failed validation.
    FleetDevice {
        /// Index of the offending device within the fleet.
        device: usize,
        /// The device-level rejection.
        source: Box<ConfigError>,
    },
    /// A fault specification is unusable (device out of range, bad
    /// factor, …).
    BadFault {
        /// Index into the fault list.
        index: usize,
        /// What is wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroRows => write!(f, "rows_per_column must be at least 1"),
            ConfigError::TooManyRows { rows, max } => {
                write!(f, "rows_per_column {rows} exceeds the maximum {max}")
            }
            ConfigError::ZeroEntryBytes => write!(f, "entry_bytes must be nonzero"),
            ConfigError::NonPositiveCpi { cpi } => {
                write!(f, "sched_cpi must be finite and positive, got {cpi}")
            }
            ConfigError::ZeroWaitTimeout => write!(f, "wait_timeout must be nonzero"),
            ConfigError::NoDevices => write!(f, "a fleet needs at least one device"),
            ConfigError::DuplicateDeviceId { id } => {
                write!(f, "fleet device id {id} is used more than once")
            }
            ConfigError::DeviceIdCountMismatch { ids, devices } => {
                write!(f, "{ids} device id(s) given for {devices} device(s)")
            }
            ConfigError::ZeroRunAhead => write!(f, "run_ahead window must be nonzero"),
            ConfigError::FleetDevice { device, source } => {
                write!(f, "fleet device {device} configuration invalid: {source}")
            }
            ConfigError::BadFault { index, reason } => {
                write!(f, "fault spec {index} invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::FleetDevice { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Fluent constructor for [`PagodaConfig`]; invalid combinations are
/// rejected at [`build`](Self::build) instead of panicking inside the
/// runtime.
///
/// ```
/// use pagoda_core::PagodaConfig;
///
/// let cfg = PagodaConfig::builder()
///     .rows_per_column(16)
///     .entry_bytes(256)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.total_entries(), cfg.num_mtbs() * 16);
/// assert!(PagodaConfig::builder().rows_per_column(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct PagodaConfigBuilder {
    cfg: PagodaConfig,
}

impl PagodaConfigBuilder {
    /// Sets the simulated GPU.
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.cfg.device = device;
        self
    }
    /// Sets the simulated interconnect.
    pub fn pcie(mut self, pcie: PcieConfig) -> Self {
        self.cfg.pcie = pcie;
        self
    }
    /// Sets TaskTable rows per column (paper: 32).
    pub fn rows_per_column(mut self, rows: u32) -> Self {
        self.cfg.rows_per_column = rows;
        self
    }
    /// Sets the bytes of one TaskTable entry as copied over PCIe.
    pub fn entry_bytes(mut self, bytes: u64) -> Self {
        self.cfg.entry_bytes = bytes;
        self
    }
    /// Sets the host CPU work per spawn call.
    pub fn spawn_cpu_cost(mut self, cost: Dur) -> Self {
        self.cfg.spawn_cpu_cost = cost;
        self
    }
    /// Sets the `wait`/`waitAll` polling timeout.
    pub fn wait_timeout(mut self, timeout: Dur) -> Self {
        self.cfg.wait_timeout = timeout;
        self
    }
    /// Sets the scheduler-warp CPI.
    pub fn sched_cpi(mut self, cpi: f64) -> Self {
        self.cfg.sched_cpi = cpi;
        self
    }
    /// Sets the cycles for one column scan.
    pub fn sched_scan_cycles(mut self, cycles: u64) -> Self {
        self.cfg.sched_scan_cycles = cycles;
        self
    }
    /// Sets the cycles for one ready-chain update.
    pub fn chain_update_cycles(mut self, cycles: u64) -> Self {
        self.cfg.chain_update_cycles = cycles;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<PagodaConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_defaults() {
        let c = PagodaConfig::default();
        assert_eq!(c.num_mtbs(), 48);
        assert_eq!(c.total_entries(), 48 * 32);
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(PagodaConfig::default().validate(), Ok(()));
        assert!(PagodaConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_rejects_each_invalid_knob() {
        assert_eq!(
            PagodaConfig::builder()
                .rows_per_column(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRows
        );
        assert_eq!(
            PagodaConfig::builder()
                .rows_per_column(MAX_ROWS_PER_COLUMN + 1)
                .build()
                .unwrap_err(),
            ConfigError::TooManyRows {
                rows: MAX_ROWS_PER_COLUMN + 1,
                max: MAX_ROWS_PER_COLUMN
            }
        );
        assert_eq!(
            PagodaConfig::builder().entry_bytes(0).build().unwrap_err(),
            ConfigError::ZeroEntryBytes
        );
        assert!(matches!(
            PagodaConfig::builder().sched_cpi(0.0).build().unwrap_err(),
            ConfigError::NonPositiveCpi { .. }
        ));
        assert!(matches!(
            PagodaConfig::builder()
                .sched_cpi(f64::NAN)
                .build()
                .unwrap_err(),
            ConfigError::NonPositiveCpi { .. }
        ));
        assert_eq!(
            PagodaConfig::builder()
                .wait_timeout(Dur::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroWaitTimeout
        );
    }

    #[test]
    fn builder_setters_apply() {
        let c = PagodaConfig::builder()
            .rows_per_column(8)
            .entry_bytes(128)
            .spawn_cpu_cost(Dur::from_ns(500))
            .wait_timeout(Dur::from_us(5))
            .sched_cpi(1.5)
            .sched_scan_cycles(90)
            .chain_update_cycles(110)
            .build()
            .unwrap();
        assert_eq!(c.rows_per_column, 8);
        assert_eq!(c.entry_bytes, 128);
        assert_eq!(c.spawn_cpu_cost, Dur::from_ns(500));
        assert_eq!(c.wait_timeout, Dur::from_us(5));
        assert!((c.sched_cpi - 1.5).abs() < 1e-12);
        assert_eq!(c.sched_scan_cycles, 90);
        assert_eq!(c.chain_update_cycles, 110);
    }

    #[test]
    fn config_error_messages_name_the_knob() {
        assert!(ConfigError::ZeroRows
            .to_string()
            .contains("rows_per_column"));
        assert!(ConfigError::ZeroWaitTimeout
            .to_string()
            .contains("wait_timeout"));
        assert!(ConfigError::ZeroRunAhead.to_string().contains("run_ahead"));
        assert!(ConfigError::DuplicateDeviceId { id: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn fleet_device_error_chains_source() {
        use std::error::Error as _;
        let e = ConfigError::FleetDevice {
            device: 2,
            source: Box::new(ConfigError::ZeroRows),
        };
        assert!(e.to_string().contains("device 2"));
        assert!(e.to_string().contains("rows_per_column"));
        assert!(matches!(
            e.source().unwrap().downcast_ref::<ConfigError>(),
            Some(ConfigError::ZeroRows)
        ));
    }
}
