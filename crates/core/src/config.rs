//! Runtime configuration: machine choice plus the measured-constant knobs
//! of the Pagoda implementation (entry sizes, scheduler-warp cycle costs,
//! host API costs). Defaults approximate the paper's Titan X testbed; the
//! benchmark harness never tunes these per experiment — one calibration
//! serves every figure.

use desim::Dur;
use gpu_sim::DeviceConfig;
use pcie::PcieConfig;

/// Full Pagoda runtime configuration.
#[derive(Debug, Clone)]
pub struct PagodaConfig {
    /// The simulated GPU.
    pub device: DeviceConfig,
    /// The simulated interconnect.
    pub pcie: PcieConfig,
    /// TaskTable rows per column (paper: 32).
    pub rows_per_column: u32,
    /// Bytes of one TaskTable entry as copied over PCIe (parameters,
    /// kernel pointer, shape, flags).
    pub entry_bytes: u64,
    /// Host CPU work per `taskSpawn` call (find entry, marshal arguments,
    /// enqueue the copy).
    pub spawn_cpu_cost: Dur,
    /// `wait`/`waitAll` polling timeout before forcing a TaskTable
    /// copy-back (paper §4.2.2, "these functions therefore use a timeout").
    pub wait_timeout: Dur,
    /// Scheduler-warp cycles to scan the column and pick up one action.
    /// Added to every action below.
    pub sched_scan_cycles: u64,
    /// Cycles for the ready-chain update (Algorithm 1, lines 5-13).
    pub chain_update_cycles: u64,
    /// Fixed cycles of one `pSched` invocation (Algorithm 2 setup).
    pub psched_cycles_base: u64,
    /// Additional `pSched` cycles per warp placed.
    pub psched_cycles_per_warp: u64,
    /// Cycles for one shared-memory allocation attempt, including the
    /// deferred-deallocation drain (Algorithm 1, lines 21-24).
    pub smem_alloc_cycles: u64,
    /// Cycles to allocate a named barrier ID.
    pub barrier_alloc_cycles: u64,
    /// CPI of scheduler-warp bookkeeping code (shared-memory resident
    /// tables, some divergence).
    pub sched_cpi: f64,
    /// Extra cycles appended to every executor warp for the completion
    /// epilogue (Algorithm 1, lines 34-43: dealloc marking, doneCtr,
    /// flag clears).
    pub exec_epilogue_cycles: u64,
    /// Bytes of the flag-only host write used by the final-task flush.
    pub flag_write_bytes: u64,
}

impl Default for PagodaConfig {
    fn default() -> Self {
        PagodaConfig {
            device: DeviceConfig::titan_x(),
            pcie: PcieConfig::default(),
            rows_per_column: 32,
            entry_bytes: 192,
            spawn_cpu_cost: Dur::from_ns(1200),
            wait_timeout: Dur::from_us(20),
            sched_scan_cycles: 120,
            chain_update_cycles: 150,
            psched_cycles_base: 100,
            psched_cycles_per_warp: 40,
            smem_alloc_cycles: 250,
            barrier_alloc_cycles: 60,
            sched_cpi: 2.0,
            exec_epilogue_cycles: 80,
            flag_write_bytes: 8,
        }
    }
}

impl PagodaConfig {
    /// MTBs the MasterKernel launches: two per SMM (paper §4.1).
    pub fn num_mtbs(&self) -> u32 {
        self.device.spec.num_sms * 2
    }

    /// Total TaskTable entries.
    pub fn total_entries(&self) -> u32 {
        self.num_mtbs() * self.rows_per_column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_defaults() {
        let c = PagodaConfig::default();
        assert_eq!(c.num_mtbs(), 48);
        assert_eq!(c.total_entries(), 48 * 32);
    }
}
