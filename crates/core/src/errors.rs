//! Typed errors for the public runtime API.
//!
//! The hierarchy is hand-rolled in the `thiserror` idiom (the workspace
//! builds offline, so no derive crate): every leaf error implements
//! `Display` + `Error`, and [`PagodaError`] is the umbrella callers can
//! hold when they drive the whole API. Panics remain only for *internal
//! invariant* violations, and their messages name the invariant.

use crate::config::ConfigError;
use crate::table::TaskId;
use crate::task::{TaskDesc, TaskError};

/// Why [`submit`](crate::PagodaRuntime::submit) declined to spawn.
#[derive(Debug)]
pub enum SubmitError {
    /// Every TaskTable entry is occupied in the CPU's current view. The
    /// description is handed back so the caller can requeue it without a
    /// clone; a [`sync_table`](crate::PagodaRuntime::sync_table) may
    /// reveal freed entries.
    Full(TaskDesc),
    /// The description can never spawn (shape/resource validation).
    Invalid(TaskError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "task table full in the CPU view"),
            SubmitError::Invalid(e) => write!(f, "invalid task: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Full(_) => None,
            SubmitError::Invalid(e) => Some(e),
        }
    }
}

impl From<TaskError> for SubmitError {
    fn from(e: TaskError) -> Self {
        SubmitError::Invalid(e)
    }
}

/// CPU-side view of TaskTable headroom, returned by
/// [`capacity`](crate::PagodaRuntime::capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capacity {
    /// Entries free in the CPU's current view — this many consecutive
    /// [`submit`](crate::PagodaRuntime::submit) calls are guaranteed to
    /// succeed before the next table refresh. The GPU may have freed more
    /// (the CPU only learns via copy-backs; §4.2.2's lazy updates).
    pub known_free: u32,
    /// Total TaskTable entries (columns × rows).
    pub total: u32,
}

impl Capacity {
    /// Whether at least one submit is guaranteed to succeed.
    pub fn has_room(&self) -> bool {
        self.known_free > 0
    }
}

/// Umbrella error for the runtime's fallible public API.
#[derive(Debug)]
pub enum PagodaError {
    /// A [`TaskId`] that this runtime never issued.
    UnknownTask {
        /// The offending id.
        task: TaskId,
        /// How many tasks this runtime has spawned (valid ids cover them).
        spawned: u64,
    },
    /// A spawn was declined.
    Submit(SubmitError),
    /// A configuration failed validation.
    Config(ConfigError),
    /// The task's device died and the retry policy gave up (cluster
    /// layer: `RetryPolicy::Fail`, or `Resubmit` past `max_attempts`).
    TaskLost {
        /// The lost task's id.
        task: TaskId,
        /// Spawn attempts made before giving up (≥ 1).
        attempts: u32,
    },
}

impl std::fmt::Display for PagodaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagodaError::UnknownTask { task, spawned } => write!(
                f,
                "unknown task id {task:?}: this runtime has spawned {spawned} task(s)"
            ),
            PagodaError::Submit(e) => write!(f, "submit failed: {e}"),
            PagodaError::Config(e) => write!(f, "invalid configuration: {e}"),
            PagodaError::TaskLost { task, attempts } => write!(
                f,
                "task {task:?} lost to a device failure after {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for PagodaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PagodaError::UnknownTask { .. } => None,
            PagodaError::Submit(e) => Some(e),
            PagodaError::Config(e) => Some(e),
            PagodaError::TaskLost { .. } => None,
        }
    }
}

impl From<SubmitError> for PagodaError {
    fn from(e: SubmitError) -> Self {
        PagodaError::Submit(e)
    }
}

impl From<ConfigError> for PagodaError {
    fn from(e: ConfigError) -> Self {
        PagodaError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;
    use std::error::Error as _;

    #[test]
    fn submit_error_full_returns_the_desc() {
        let desc = TaskDesc::uniform(64, WarpWork::compute(1_000, 1.0));
        let e = SubmitError::Full(desc);
        assert!(e.to_string().contains("full"));
        assert!(e.source().is_none());
        match e {
            SubmitError::Full(d) => assert_eq!(d.threads_per_tb, 64),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn submit_error_invalid_chains_source() {
        let e = SubmitError::from(TaskError::EmptyTask);
        assert!(e.to_string().contains("invalid task"));
        assert!(e.source().is_some());
    }

    #[test]
    fn pagoda_error_display_and_sources() {
        let u = PagodaError::UnknownTask {
            task: TaskId::FIRST,
            spawned: 3,
        };
        assert!(u.to_string().contains("unknown task"));
        assert!(u.source().is_none());

        let s = PagodaError::from(SubmitError::Invalid(TaskError::EmptyTask));
        assert!(s.to_string().contains("submit failed"));
        assert!(s.source().is_some());
    }

    #[test]
    fn capacity_has_room() {
        assert!(Capacity {
            known_free: 1,
            total: 1536
        }
        .has_room());
        assert!(!Capacity {
            known_free: 0,
            total: 1536
        }
        .has_room());
    }
}
