//! **pagoda-core** — the Pagoda runtime (Yeh et al., PPoPP 2017) on a
//! simulated GPU substrate.
//!
//! Pagoda virtualizes GPU compute resources at *warp* granularity so that
//! thousands of narrow tasks (< 500 threads each) can keep a GPU busy. A
//! persistent **MasterKernel** occupies 100 % of the device; the first warp
//! of each of its 48 threadblocks (MTBs) acts as a *scheduler warp* that
//! places task work onto the other 31 *executor warps*. The host spawns
//! tasks continuously into a CPU/GPU-mirrored **TaskTable** whose state
//! machine needs no PCIe atomics and whose copy-backs are lazy and
//! aggregated.
//!
//! Module map (paper section in parentheses):
//!
//! * [`table`] — the TaskTable protocol state machine (§4.2)
//! * [`runtime`] — host API + spawning pipeline + MTB scheduler warps
//!   (§3, §4.2.1-4.2.2, Algorithms 1-2)
//! * `mtb` — per-MTB state (§4.1, §4.3)
//! * [`warptable`] — the WarpTable (Table 2)
//! * [`smem`] — buddy shared-memory allocator with deferred frees (§5.1)
//! * [`barrier`] — named-barrier ID recycling (§5.2)
//! * [`task`] — `taskSpawn` descriptors (Table 1)
//! * [`config`] — calibration constants, with a validating
//!   [`PagodaConfig::builder`]
//! * [`errors`] — the typed [`PagodaError`]/[`SubmitError`] hierarchy
//!
//! # Example
//!
//! ```
//! use pagoda_core::{PagodaRuntime, TaskDesc};
//! use gpu_sim::WarpWork;
//!
//! let mut rt = PagodaRuntime::titan_x();
//! // Spawn 100 narrow tasks of 128 threads each.
//! let ids: Vec<_> = (0..100)
//!     .map(|_| {
//!         rt.submit(TaskDesc::uniform(128, WarpWork::compute(50_000, 4.0)))
//!             .unwrap()
//!     })
//!     .collect();
//! rt.wait_all();
//! let report = rt.report();
//! assert_eq!(report.tasks, 100);
//! assert!(rt.task_latency(ids[0]).is_some());
//! ```
//!
//! To observe a run, attach a recorder from `pagoda_obs`:
//!
//! ```
//! use gpu_sim::WarpWork;
//! use pagoda_core::{PagodaRuntime, TaskDesc};
//! use pagoda_obs::{Counter, Obs};
//!
//! let mut rt = PagodaRuntime::titan_x();
//! let (obs, rec) = Obs::recording();
//! rt.attach_obs(obs);
//! let t = rt.submit(TaskDesc::uniform(64, WarpWork::compute(10_000, 2.0))).unwrap();
//! rt.wait(t).unwrap();
//! assert_eq!(rec.snapshot().counter(Counter::TasksSpawned), 1);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod barrier;
pub mod config;
pub mod errors;
mod mtb;
pub mod runtime;
pub mod smem;
pub mod table;
pub mod task;
pub mod trace;
pub mod warptable;

pub use config::{ConfigError, PagodaConfig, PagodaConfigBuilder};
pub use errors::{Capacity, PagodaError, SubmitError};
pub use runtime::{PagodaRuntime, RunReport};
pub use table::{EntryIndex, EntryState, Ready, TaskId};
pub use task::{TaskDesc, TaskError, MAX_THREADS_PER_TASK_TB};
pub use trace::{write_chrome_trace, TaskTrace};
