//! The per-MTB WarpTable (paper Table 2).
//!
//! Each MTB keeps one slot per executor warp (31 of them) in shared
//! memory. The scheduler warp writes a slot to dispatch work (`pSched`,
//! Algorithm 2); the executor warp spins on its `exec` flag, runs the task,
//! and clears the flag when done. Slot fields mirror the paper exactly:
//! `warpId` (warp index within the task, for `getTid()`), `eNum` (which
//! TaskTable entry the work came from), `SMindex` (shared-memory block),
//! `barId` (named barrier), `exec` (dispatch flag / busy status).

use crate::barrier::BarrierId;
use crate::smem::NodeId;
use crate::table::EntryIndex;

/// Executor warps per MTB: 32 warps minus the scheduler warp.
pub const EXECUTORS_PER_MTB: usize = 31;

/// One WarpTable slot (paper Table 2). `None` fields correspond to tasks
/// that requested no shared memory / no synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Warp index of this warp *within its task*, used by `getTid()`.
    pub warp_id: u32,
    /// TaskTable entry being executed (the paper's `eNum`).
    pub e_num: EntryIndex,
    /// Which task threadblock within the task this warp belongs to.
    pub tb_index: u32,
    /// Shared-memory block of the threadblock, if any.
    pub sm_index: Option<NodeId>,
    /// Named barrier of the threadblock, if it synchronizes.
    pub bar_id: Option<BarrierId>,
}

/// The WarpTable: 31 slots plus a free count.
#[derive(Debug, Clone)]
pub struct WarpTable {
    slots: [Option<Slot>; EXECUTORS_PER_MTB],
    /// Idle-slot count, maintained at dispatch/complete so occupancy
    /// reads need no scan.
    free: u32,
}

impl Default for WarpTable {
    fn default() -> Self {
        Self::new()
    }
}

impl WarpTable {
    /// All slots free.
    pub fn new() -> Self {
        WarpTable {
            slots: [None; EXECUTORS_PER_MTB],
            free: EXECUTORS_PER_MTB as u32,
        }
    }

    /// Number of executor warps with a cleared `exec` flag. O(1).
    pub fn free_count(&self) -> usize {
        self.free as usize
    }

    /// Finds the lowest free slot, like the parallel scan in `pSched`
    /// (deterministic tie-break: the lowest thread lane wins the atomic).
    pub fn find_free(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    /// Dispatches work to a slot: writes the fields, then sets `exec`
    /// (Algorithm 2, lines 9-14; the threadfence between field writes and
    /// the flag is implicit in our sequential model).
    ///
    /// # Panics
    /// Panics if the slot is already busy.
    pub fn dispatch(&mut self, slot: usize, s: Slot) {
        assert!(self.slots[slot].is_none(), "slot {slot} already executing");
        self.slots[slot] = Some(s);
        self.free -= 1;
    }

    /// The executor warp finished: clears `exec`, returning the slot's
    /// contents for completion bookkeeping.
    ///
    /// # Panics
    /// Panics if the slot was not busy.
    pub fn complete(&mut self, slot: usize) -> Slot {
        let s = self.slots[slot]
            .take()
            .unwrap_or_else(|| panic!("completion on idle slot {slot}"));
        self.free += 1;
        s
    }

    /// Contents of a busy slot.
    pub fn get(&self, slot: usize) -> Option<&Slot> {
        self.slots[slot].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::EntryIndex;

    fn slot(e: u32) -> Slot {
        Slot {
            warp_id: 0,
            e_num: EntryIndex { col: 0, row: e },
            tb_index: 0,
            sm_index: None,
            bar_id: None,
        }
    }

    #[test]
    fn dispatch_and_complete_roundtrip() {
        let mut wt = WarpTable::new();
        assert_eq!(wt.free_count(), 31);
        let i = wt.find_free().unwrap();
        wt.dispatch(i, slot(3));
        assert_eq!(wt.free_count(), 30);
        assert_eq!(wt.get(i).unwrap().e_num.row, 3);
        let s = wt.complete(i);
        assert_eq!(s.e_num.row, 3);
        assert_eq!(wt.free_count(), 31);
    }

    #[test]
    fn fills_all_31_slots() {
        let mut wt = WarpTable::new();
        for k in 0..31 {
            let i = wt.find_free().unwrap();
            wt.dispatch(i, slot(k));
        }
        assert_eq!(wt.free_count(), 0);
        assert!(wt.find_free().is_none());
    }

    #[test]
    #[should_panic(expected = "already executing")]
    fn double_dispatch_panics() {
        let mut wt = WarpTable::new();
        wt.dispatch(0, slot(0));
        wt.dispatch(0, slot(1));
    }

    #[test]
    #[should_panic(expected = "completion on idle")]
    fn complete_idle_panics() {
        let mut wt = WarpTable::new();
        wt.complete(4);
    }
}
