//! Per-task timeline traces: where each task spent its life.
//!
//! The runtime records the instants every task crosses the pipeline's
//! stage boundaries (the stages of paper §4.3's overlapped processing):
//!
//! ```text
//! spawned ──► entry_visible ──► schedulable ──► first_exec ──► gpu_done ──► output_done
//!   host        H2D copy          chain/flush      pSched         last        D2H copy
//!   call        lands             marks (1,1)      dispatch       warp        lands
//! ```
//!
//! [`TaskTrace::phases`] turns a trace into named spans, and
//! [`write_chrome_trace`] emits the whole run in the Chrome tracing
//! format (`chrome://tracing` / Perfetto), one row per TaskTable column.
//!
//! For richer exports — per-SMM resource tracks, per-tenant task tracks,
//! counters — attach a `pagoda_obs::MemRecorder` via
//! [`crate::PagodaRuntime::attach_obs`] and use
//! `pagoda_obs::export::write_chrome_trace` on its buffer; this module's
//! exporter remains for trace-only runs without a recorder.

use std::io::{self, Write};

use desim::SimTime;

use crate::table::TaskId;

/// The recorded stage-crossing instants of one task. `None` means the
/// task had not reached that stage when the trace was taken.
#[derive(Debug, Clone, Copy)]
pub struct TaskTrace {
    /// The task.
    pub task: TaskId,
    /// TaskTable column (= MTB) it ran on.
    pub column: u32,
    /// Host `taskSpawn` call.
    pub spawned: SimTime,
    /// Entry's H2D copy visible in device memory.
    pub entry_visible: Option<SimTime>,
    /// Marked `(Scheduling, sched)` by the ready chain or the flush.
    pub schedulable: Option<SimTime>,
    /// First executor warp dispatched.
    pub first_exec: Option<SimTime>,
    /// Last executor warp finished.
    pub gpu_done: Option<SimTime>,
    /// Output copy landed in host memory.
    pub output_done: Option<SimTime>,
}

impl TaskTrace {
    /// The trace as named, consecutive phases with durations (only the
    /// phases the task completed).
    pub fn phases(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        let mut out = Vec::new();
        let mut prev = self.spawned;
        for (name, t) in [
            ("spawn→visible", self.entry_visible),
            ("visible→schedulable", self.schedulable),
            ("schedulable→exec", self.first_exec),
            ("exec→done", self.gpu_done),
            ("done→output", self.output_done),
        ] {
            if let Some(t) = t {
                out.push((name, prev, t.max(prev)));
                prev = t.max(prev);
            } else {
                break;
            }
        }
        out
    }

    /// End-to-end latency if the task completed on the GPU.
    pub fn latency(&self) -> Option<desim::Dur> {
        self.gpu_done.map(|d| d - self.spawned)
    }
}

/// Writes traces in the Chrome tracing JSON array format. Rows (`tid`)
/// are TaskTable columns, so the viewer shows each MTB's task stream.
pub fn write_chrome_trace<W: Write>(traces: &[TaskTrace], mut w: W) -> io::Result<()> {
    writeln!(w, "[")?;
    let mut first = true;
    for t in traces {
        for (name, start, end) in t.phases() {
            if !first {
                writeln!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"T{} {name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                t.task.0,
                t.column,
                start.as_us_f64(),
                (end - start).as_us_f64().max(0.001),
            )?;
        }
    }
    writeln!(w, "\n]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskTrace {
        TaskTrace {
            task: TaskId(2),
            column: 3,
            spawned: SimTime::from_us(1),
            entry_visible: Some(SimTime::from_us(3)),
            schedulable: Some(SimTime::from_us(4)),
            first_exec: Some(SimTime::from_us(5)),
            gpu_done: Some(SimTime::from_us(9)),
            output_done: Some(SimTime::from_us(11)),
        }
    }

    #[test]
    fn phases_are_consecutive_and_named() {
        let p = sample().phases();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0].0, "spawn→visible");
        for w in p.windows(2) {
            assert_eq!(w[0].2, w[1].1, "phases must chain");
        }
        assert_eq!(p[4].2, SimTime::from_us(11));
    }

    #[test]
    fn incomplete_trace_truncates() {
        let mut t = sample();
        t.first_exec = None;
        t.gpu_done = None;
        t.output_done = None;
        assert_eq!(t.phases().len(), 2);
        assert!(t.latency().is_none());
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let mut buf = Vec::new();
        write_chrome_trace(&[sample(), sample()], &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        assert_eq!(s.matches("\"ph\":\"X\"").count(), 10);
        // Balanced braces (cheap well-formedness check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
