//! Property-based tests of the buddy shared-memory allocator: the
//! paper's structural invariant, non-overlap, conservation, and
//! idempotent merge behaviour under arbitrary alloc/dealloc interleavings.

use pagoda_core::smem::{BuddyAllocator, NodeId, SMEM_POOL_BYTES};
use proptest::prelude::*;

/// A scripted allocator operation.
#[derive(Debug, Clone)]
enum Op {
    /// Request this many bytes (may fail — that's fine).
    Alloc(u32),
    /// Immediately free the k-th live allocation (mod live count).
    Dealloc(usize),
    /// Defer-free the k-th live allocation, then drain.
    MarkAndDrain(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=SMEM_POOL_BYTES).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Dealloc),
        (0usize..64).prop_map(Op::MarkAndDrain),
    ]
}

fn overlap(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

proptest! {
    #[test]
    fn invariants_hold_under_any_op_sequence(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut alloc = BuddyAllocator::new();
        let mut live: Vec<(NodeId, u32)> = Vec::new(); // (node, requested)
        let mut outstanding = 0u32;

        for op in ops {
            match op {
                Op::Alloc(bytes) => {
                    if let Ok(n) = alloc.alloc(bytes) {
                        let (_, size) = alloc.block_of(n);
                        prop_assert!(size >= bytes.max(512).next_power_of_two().min(SMEM_POOL_BYTES));
                        live.push((n, size));
                        outstanding += size;
                    }
                }
                Op::Dealloc(k) if !live.is_empty() => {
                    let (n, size) = live.remove(k % live.len());
                    alloc.dealloc(n);
                    outstanding -= size;
                }
                Op::MarkAndDrain(k) if !live.is_empty() => {
                    let (n, size) = live.remove(k % live.len());
                    alloc.mark_for_dealloc(n);
                    prop_assert!(alloc.has_pending_deallocs());
                    prop_assert_eq!(alloc.dealloc_marked(), 1);
                    outstanding -= size;
                }
                _ => {}
            }
            // Paper invariant: marked node ⇒ marked parent.
            prop_assert!(alloc.check_invariant());
            // Accounting matches our shadow state.
            prop_assert_eq!(alloc.allocated_bytes(), outstanding);
            // Live blocks never overlap.
            let blocks: Vec<(u32, u32)> = live.iter().map(|(n, _)| alloc.block_of(*n)).collect();
            for i in 0..blocks.len() {
                for j in i + 1..blocks.len() {
                    prop_assert!(!overlap(blocks[i], blocks[j]), "{:?} vs {:?}", blocks[i], blocks[j]);
                }
            }
        }
    }

    #[test]
    fn freeing_everything_restores_the_full_pool(sizes in prop::collection::vec(512u32..8192, 1..20)) {
        let mut alloc = BuddyAllocator::new();
        let mut live = Vec::new();
        for s in sizes {
            if let Ok(n) = alloc.alloc(s) {
                live.push(n);
            }
        }
        for n in live {
            alloc.dealloc(n);
        }
        // The tree must have merged back to one 32 KB block.
        let full = alloc.alloc(SMEM_POOL_BYTES);
        prop_assert!(full.is_ok());
    }

    #[test]
    fn allocator_never_hands_out_more_than_the_pool(sizes in prop::collection::vec(512u32..32_769, 1..80)) {
        let mut alloc = BuddyAllocator::new();
        let mut total = 0u64;
        for s in sizes {
            if let Ok(n) = alloc.alloc(s) {
                total += u64::from(alloc.block_of(n).1);
            }
        }
        prop_assert!(total <= u64::from(SMEM_POOL_BYTES));
    }
}
