//! Property tests of the TaskTable protocol state machine: the legal
//! transition graph of Fig. 2a is closed (no sequence of legal operations
//! reaches an illegal state), and the CPU/GPU ownership split holds.

use pagoda_core::table::TaskTableSide;
use pagoda_core::{EntryIndex, EntryState, Ready, TaskId};
use proptest::prelude::*;

// Drive one entry through its legal lifecycle a random number of times,
// alternating the two ways a task becomes schedulable (successor chain
// vs CPU flush — both are `chain_mark_schedulable` at the table level).
proptest! {
    #[test]
    fn entry_lifecycle_roundtrips(cycles in 1usize..50, use_ref in prop::collection::vec(prop::bool::ANY, 50)) {
        let mut t = TaskTableSide::new(1, 1);
        let e = EntryIndex { col: 0, row: 0 };
        for i in 0..cycles {
            prop_assert_eq!(t.get(e), EntryState::default());
            if use_ref[i % use_ref.len()] {
                // Arrives as Ref(prev), settles via the chain.
                t.set(e, EntryState { ready: Ready::Ref(TaskId(2 + i as u64)), sched: false });
                t.chain_settle(e);
            } else {
                // Arrives as the first of a chain.
                t.set(e, EntryState { ready: Ready::Copied, sched: false });
            }
            t.chain_mark_schedulable(e);
            t.clear_sched(e);
            t.complete(e);
        }
        prop_assert_eq!(t.free_entries(), 1);
    }

    #[test]
    fn cpu_claims_respect_ownership(claims in prop::collection::vec((0u32..4, 0u32..8), 1..64)) {
        // The CPU may only claim entries whose ready field is Free; any
        // double claim must panic (checked via catch_unwind) rather than
        // silently corrupt.
        let mut t = TaskTableSide::new(4, 8);
        let mut occupied = std::collections::HashSet::new();
        for (col, row) in claims {
            let e = EntryIndex { col, row };
            let fresh = occupied.insert((col, row));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut clone = t.clone();
                clone.cpu_claim(e, Ready::Copied);
                clone
            }));
            if fresh {
                t = result.expect("claiming a free entry must succeed");
            } else {
                prop_assert!(result.is_err(), "double claim must be rejected");
            }
        }
        prop_assert_eq!(t.free_entries(), 32 - occupied.len());
    }

    #[test]
    fn column_scan_sees_consistent_states(rows in 1u32..32, marks in prop::collection::vec(0u32..32, 0..16)) {
        let mut t = TaskTableSide::new(1, rows);
        let mut expected = 0;
        let mut seen = std::collections::HashSet::new();
        for m in marks {
            let row = m % rows;
            if seen.insert(row) {
                t.cpu_claim(EntryIndex { col: 0, row }, Ready::Copied);
                expected += 1;
            }
        }
        let non_free = t.column(0).filter(|(_, s)| s.ready != Ready::Free).count();
        prop_assert_eq!(non_free, expected);
    }
}
