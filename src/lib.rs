//! # Pagoda
//!
//! A Rust reproduction of **"Pagoda: Fine-Grained GPU Resource
//! Virtualization for Narrow Tasks"** (Yeh, Sabne, Sakdhnagool, Eigenmann,
//! Rogers — PPoPP 2017), complete with the GPU substrate it runs on, the
//! baselines it is evaluated against, and the workloads of its evaluation.
//!
//! GPUs waste most of their capacity on *narrow tasks* — kernels with
//! fewer than ~500 threads. Pagoda fixes this with an OS-like daemon
//! kernel, the **MasterKernel**, that owns every warp of the device and
//! schedules task work at *warp* granularity, fed continuously from the
//! host through a mirrored, atomics-free **TaskTable**.
//!
//! Because device-side persistent CUDA kernels cannot be written in
//! stable Rust (and this repository must run anywhere), the hardware is a
//! deterministic discrete-event simulator of the paper's Maxwell Titan X;
//! the Pagoda *runtime logic* — the TaskTable protocol, scheduler/executor
//! warp algorithms, buddy shared-memory allocator, named-barrier recycling
//! — is implemented in full. See `DESIGN.md` for the substitution
//! argument and `EXPERIMENTS.md` for paper-vs-measured numbers on every
//! figure and table.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`pagoda_core`] | the Pagoda runtime (the paper's contribution) |
//! | [`gpu_sim`] | the GPU device model (SMMs, warps, threadblocks) |
//! | [`gpu_arch`] | machine specs and occupancy math |
//! | [`pcie`] | the host-device interconnect model |
//! | [`desim`] | the discrete-event engine |
//! | [`baselines`] | CUDA-HyperQ, GeMTC, static fusion, CPU baselines |
//! | [`workloads`] | the eight evaluation benchmarks + MPE |
//! | [`pagoda_serve`] | multi-tenant serving: admission control + QoS |
//! | [`pagoda_obs`] | cross-layer observability: spans, counters, exporters |
//! | [`pagoda_prof`] | critical-path profiling, latency decomposition, SLOs |
//! | [`pagoda_cluster`] | multi-GPU fleets: routed placement + failover |
//! | [`pagoda_host`] | ergonomic host-side handle over the runtime |
//!
//! ## Quickstart
//!
//! ```
//! use pagoda::prelude::*;
//!
//! // Boot the runtime: launches the MasterKernel at 100 % occupancy.
//! let mut rt = PagodaRuntime::titan_x();
//!
//! // Record everything the stack does while we use it.
//! let (obs, recorder) = Obs::recording();
//! rt.attach_obs(obs);
//!
//! // Spawn 1000 narrow tasks (128 threads each) and wait for them. The
//! // table holds 1536 entries, so the non-blocking probe never fills up
//! // here; under overload, retry after `sync_table()`.
//! for _ in 0..1000 {
//!     rt.submit(TaskDesc::uniform(128, WarpWork::compute(200_000, 8.0)))
//!         .unwrap();
//! }
//! rt.wait_all();
//!
//! let report = rt.report();
//! assert_eq!(report.tasks, 1000);
//! println!("makespan: {}, occupancy: {:.1}%",
//!          report.makespan, report.avg_running_occupancy * 100.0);
//!
//! // Export the run as a chrome://tracing timeline with per-SMM
//! // resource tracks alongside the task spans.
//! let mut trace = Vec::new();
//! pagoda_obs::write_chrome_trace(&recorder.snapshot(), &mut trace).unwrap();
//! assert!(trace.starts_with(br#"{"traceEvents":["#));
//! ```

pub use baselines;
pub use desim;
pub use gpu_arch;
pub use gpu_sim;
pub use pagoda_cluster;
pub use pagoda_core;
pub use pagoda_host;
pub use pagoda_obs;
pub use pagoda_prof;
pub use pagoda_serve;
pub use pcie;
pub use workloads;

/// The names most programs need.
pub mod prelude {
    pub use baselines::{
        run_fusion, run_gemtc, run_hyperq, run_pagoda, run_pagoda_with_obs, run_pthreads,
        run_sequential, CpuConfig, FusionConfig, GemtcConfig, HyperQConfig, RunSummary,
    };
    pub use desim::{Dur, SimTime};
    pub use gpu_arch::{GpuSpec, TaskShape};
    pub use gpu_sim::{BlockWork, DeviceConfig, GpuDevice, KernelDesc, Segment, WarpWork};
    pub use pagoda_cluster::{
        ClusterConfig, ClusterConfigBuilder, ClusterHandle, FaultKind, FaultSpec, FleetReport,
        Placement, RetryPolicy, TaskStatus,
    };
    pub use pagoda_core::{
        Capacity, ConfigError, PagodaConfig, PagodaConfigBuilder, PagodaError, PagodaRuntime,
        SubmitError, TaskDesc, TaskError, TaskId,
    };
    pub use pagoda_host::Backend;
    pub use pagoda_obs::{Counter, MemRecorder, Obs, ObsBuffer, Recorder, TaskState};
    pub use pagoda_prof::{
        check_exposition, write_folded, write_prometheus, Phase, ProfRecorder, ProfReport, SloSpec,
    };
    pub use pagoda_serve::{
        serve, serve_on, ArrivalSpec, Policy, ServeConfig, ServeError, TenantSpec,
    };
    pub use workloads::{Bench, GenOpts};
}
