//! Workspace-local subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the handful of `rand` items it actually uses
//! (see `vendor/README.md` for the policy). The surface mirrors rand 0.8:
//! [`Rng`], [`RngCore`], [`SeedableRng`], [`rngs::SmallRng`],
//! [`seq::SliceRandom`], and the [`distributions::Standard`] plumbing
//! behind `Rng::gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `SmallRng`, which is fine here: nothing in this
//! repository depends on upstream's exact stream, only on determinism
//! (two runs with one seed produce identical values) and reasonable
//! statistical quality.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core of every generator: a source of uniform random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (as in upstream rand).
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample_from(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..5);
            assert!(y < 5);
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f32 = r.gen_range(0.001..0.1);
            assert!((0.001..0.1).contains(&g));
            let i: u32 = r.gen_range(1..=4);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn standard_types_sample() {
        let mut r = SmallRng::seed_from_u64(9);
        let _: u8 = r.gen();
        let _: u64 = r.gen();
        let b: bool = r.gen();
        let f: f32 = r.gen();
        let d: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        assert!((0.0..1.0).contains(&d));
        let _ = b;
    }
}
