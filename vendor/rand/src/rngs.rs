//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic PRNG: xoshiro256++ with SplitMix64
/// seeding. Statistically strong for simulation use; not cryptographic.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

/// Alias kept for API compatibility; the workspace only ever seeds
/// explicitly, so the "standard" generator is the same engine.
pub type StdRng = SmallRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro forbids the all-zero state; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
