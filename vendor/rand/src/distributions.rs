//! The `Standard` distribution and uniform range sampling.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of each primitive: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (`Rng::gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let f: $t = Standard.sample_from(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let f: $t = Standard.sample_from(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);
