//! Workspace-local subset of `serde_json`: serialization to compact JSON
//! strings. The vendored [`serde::Serialize`] already writes JSON text,
//! so this crate is the entry point plus the upstream error signature.

use std::fmt;

/// Serialization error. The vendored encoder is infallible, so this is
/// never constructed; it exists so call sites keep upstream's
/// `Result`-returning signature.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_numbers_keep_decimal_point() {
        assert_eq!(super::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(super::to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(super::to_string("x").unwrap(), "\"x\"");
    }
}
