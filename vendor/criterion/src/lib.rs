//! Workspace-local subset of the `criterion` API (offline build — see
//! `vendor/README.md`).
//!
//! The statistical machinery (bootstrap, outlier classification, HTML
//! reports) is not reproduced. Benches compile against the same surface
//! — `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`/`iter_batched`/`iter_batched_ref`,
//! `Throughput`, `BatchSize` — and running them performs a warm-up pass
//! followed by timed batches, reporting mean time per iteration (and
//! derived throughput) on stdout. Good enough to compare hot paths
//! before/after a change; not a substitute for upstream's statistics.
//!
//! `cargo test` compiles bench targets with the ordinary test harness
//! disabled (`harness = false`), so `main` also honors `--test` (exits
//! after a single iteration per bench) the way upstream does.

use std::time::{Duration, Instant};

/// Iteration batching modes (accepted for compatibility; the vendored
/// runner sizes batches itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
            measure_for: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self, &name, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        run_one(self.criterion, &full, self.throughput, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (upstream renders its summary here; a no-op).
    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    /// Iterations to run in the next measured pass.
    iters: u64,
    /// Accumulated measured time for this pass.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` back-to-back `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Measures `routine` on a fresh `setup()` value each iteration
    /// (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_one<F>(c: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Warm-up / calibration: find an iteration count that fills roughly
    // one sampling window.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
            break b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        }
        iters *= 2;
    };
    let window = c.measure_for / u32::try_from(c.sample_size).unwrap_or(20).max(1);
    let per_sample = (window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += per_sample;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / mean_ns * 1e3),
        Throughput::Bytes(n) => format!(
            " ({:.3} MiB/s)",
            n as f64 / mean_ns * 1e9 / (1 << 20) as f64
        ),
    });
    println!(
        "{name}: {} per iter{} [{} iters]",
        fmt_ns(mean_ns),
        rate.unwrap_or_default(),
        total_iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
