//! Workspace-local subset of the `serde` API (offline build — see
//! `vendor/README.md`).
//!
//! Upstream serde separates data structures from data formats through
//! the `Serializer` visitor traits. This workspace serializes to exactly
//! one format — JSON lines out of the benchmark/serving harnesses — so
//! the vendored subset collapses that indirection: [`Serialize`] writes
//! JSON text directly and `serde_json::to_string` is a thin wrapper.
//!
//! [`Deserialize`] is a **marker trait only**: nothing in the workspace
//! parses JSON back in. Deriving it records intent (and keeps signatures
//! source-compatible with upstream) without dead parsing code. If a
//! future change needs real deserialization, implement it then.

// The derive macros live in the macro namespace, the traits below in the
// type namespace, so `use serde::{Serialize, Deserialize}` brings both
// into scope — the same trick upstream serde uses.
pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker for types whose serialized form is considered parseable; see
/// the crate docs for why this is a marker in the vendored subset.
pub trait Deserialize: Sized {}

/// Encoding helpers used by generated impls (and usable directly).
pub mod ser {
    use super::Serialize;

    /// Appends `"name":value` with a leading comma unless `first`.
    pub fn write_field<T: Serialize + ?Sized>(
        out: &mut String,
        name: &str,
        value: &T,
        first: bool,
    ) {
        if !first {
            out.push(',');
        }
        write_str(out, name);
        out.push(':');
        value.serialize_json(out);
    }

    /// Appends a JSON string literal with escaping.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Appends a float as JSON: non-finite values become `null` (JSON has
    /// no NaN/inf), integral values keep a `.0` suffix as serde_json does.
    pub fn write_f64(out: &mut String, v: f64) {
        if !v.is_finite() {
            out.push_str("null");
            return;
        }
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

macro_rules! serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        ser::write_f64(out, *self);
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        ser::write_f64(out, f64::from(*self));
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::write_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::write_str(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            ser::write_field(out, k, v, i == 0);
        }
        out.push('}');
    }
}

// Borrowed-key maps (e.g. interned `&'static str` counter names) encode
// exactly like owned-key maps: same key order, same bytes.
impl<V: Serialize> Serialize for std::collections::BTreeMap<&str, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            ser::write_field(out, k, v, i == 0);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers() {
        let mut s = String::new();
        vec![1u32, 2, 3].serialize_json(&mut s);
        assert_eq!(s, "[1,2,3]");
        let mut s = String::new();
        Some("a\"b").serialize_json(&mut s);
        assert_eq!(s, "\"a\\\"b\"");
        let mut s = String::new();
        Option::<u32>::None.serialize_json(&mut s);
        assert_eq!(s, "null");
        let mut s = String::new();
        2.0f64.serialize_json(&mut s);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        f64::NAN.serialize_json(&mut s);
        assert_eq!(s, "null");
    }
}
