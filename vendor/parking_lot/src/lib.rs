//! Workspace-local subset of the `parking_lot` API, implemented over
//! `std::sync` (offline build — see `vendor/README.md`).
//!
//! Differences from upstream that matter here:
//!
//! * `lock()` returns the guard directly (parking_lot style); a poisoned
//!   std mutex — some holder panicked — is treated as still usable, which
//!   matches parking_lot's no-poisoning semantics.
//! * `Condvar::wait*` take `&mut MutexGuard` like parking_lot; the guard
//!   internally shuttles the std guard through the wait.
//!
//! Fairness/eventual-fairness and the `parking_lot_core` parking
//! machinery are not reproduced; `std::sync` blocking is used as-is.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (no poisoning, guard-returning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can move the std guard out and back
    // while the caller keeps holding `&mut MutexGuard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live outside wait")
    }
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates the condvar.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard live before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard live before wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
