//! Workspace-local subset of the `rayon` API (offline build — see
//! `vendor/README.md`).
//!
//! Implements the two patterns the workspace uses — `par_iter().map(f)
//! .collect::<Vec<_>>()` over a slice and `into_par_iter().map(f)
//! .collect::<Vec<_>>()` over an owned `Vec` — with real data
//! parallelism: the input is split into contiguous chunks, one per
//! available core, mapped on scoped threads, and reassembled **in input
//! order**, so results are indistinguishable from the sequential map
//! (rayon's own guarantee for indexed parallel iterators).

use std::num::NonZeroUsize;

/// `use rayon::prelude::*;`
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Types whose references yield a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send + 'a;
    /// The parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over shared references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// A parallel pipeline that can be mapped and collected.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Maps each item through `f` (executed on worker threads).
    fn map<O, F>(self, f: F) -> MapParIter<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        MapParIter { inner: self, f }
    }

    /// Executes the pipeline and collects into `C` (order-preserving).
    fn collect<C: FromOrderedParallel<Self::Item>>(self) -> C;
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromOrderedParallel<T> {
    /// Builds the collection from in-order results.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromOrderedParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Types that convert into a by-value parallel iterator
/// (`.into_par_iter()`). The owned-items counterpart of
/// [`IntoParallelRefIterator`]: items move onto worker threads, which is
/// what lets a caller ship `&mut` borrows (wrapped in a work item) to
/// one thread each.
pub trait IntoParallelIterator {
    /// Item type (owned).
    type Item: Send;
    /// The parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator consuming `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// `.par_iter()` over a slice.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn collect<C: FromOrderedParallel<&'a T>>(self) -> C {
        C::from_ordered(self.slice.iter().collect())
    }
}

/// `.map(f)` stage.
pub struct MapParIter<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, O, F> ParallelIterator for MapParIter<SliceParIter<'a, T>, F>
where
    T: Sync,
    O: Send,
    F: Fn(&'a T) -> O + Sync,
{
    type Item = O;

    fn collect<C: FromOrderedParallel<O>>(self) -> C {
        let slice = self.inner.slice;
        let f = &self.f;
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(slice.len().max(1));
        if threads <= 1 || slice.len() <= 1 {
            return C::from_ordered(slice.iter().map(f).collect());
        }
        let chunk = slice.len().div_ceil(threads);
        let mut parts: Vec<Vec<O>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = slice
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<O>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon worker panicked"));
            }
        });
        C::from_ordered(parts.into_iter().flatten().collect())
    }
}

/// `.into_par_iter()` over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn collect<C: FromOrderedParallel<T>>(self) -> C {
        C::from_ordered(self.items)
    }
}

impl<T, O, F> ParallelIterator for MapParIter<VecParIter<T>, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    type Item = O;

    fn collect<C: FromOrderedParallel<O>>(self) -> C {
        let mut items = self.inner.items;
        let f = &self.f;
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            return C::from_ordered(items.drain(..).map(f).collect());
        }
        let chunk = items.len().div_ceil(threads);
        // Split the owned input into per-thread chunks, front to back, so
        // reassembly in spawn order restores the input order.
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        while !items.is_empty() {
            let rest = items.split_off(chunk.min(items.len()));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let mut parts: Vec<Vec<O>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon worker panicked"));
            }
        });
        C::from_ordered(parts.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = input.par_iter().map(|x| x * 3).collect();
        let ser: Vec<u64> = input.iter().map(|x| x * 3).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn into_parallel_map_preserves_order_and_moves_items() {
        let input: Vec<String> = (0..5_000).map(|i| i.to_string()).collect();
        let expect: Vec<usize> = input.iter().map(|s| s.len()).collect();
        let par: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(par, expect);
    }

    #[test]
    fn into_parallel_delivers_mut_borrows_exactly_once() {
        let mut cells: Vec<u64> = vec![0; 257];
        let work: Vec<(usize, &mut u64)> = cells.iter_mut().enumerate().collect();
        let idx: Vec<usize> = work
            .into_par_iter()
            .map(|(i, c)| {
                *c += i as u64 + 1;
                i
            })
            .collect();
        assert_eq!(idx, (0..257).collect::<Vec<_>>());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(*c, i as u64 + 1);
        }
    }

    #[test]
    fn into_parallel_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
