//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` subset — written against `proc_macro` directly (no `syn`/
//! `quote`, which are unavailable offline).
//!
//! Supported shapes, which cover every derive site in this workspace:
//!
//! * structs with named fields (no generics) — serialized as a JSON
//!   object in declaration order;
//! * enums whose variants are all unit variants — serialized as the
//!   variant name string, as upstream serde does by default.
//!
//! `Deserialize` expands to a marker impl only: nothing in the workspace
//! deserializes (results flow out as JSON lines), and keeping the trait
//! a marker avoids pretending otherwise. Deriving it on unsupported
//! shapes is therefore also fine.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named fields, declaration order.
    Struct(Vec<String>),
    /// Unit variants, declaration order.
    Enum(Vec<String>),
}

/// Skips one attribute (`#` + bracket group) if present.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse(input: TokenStream, trait_name: &str) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let kind_kw = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive({trait_name}): expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive({trait_name}): expected type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive({trait_name}) on {name}: generic types are not supported by the vendored serde subset");
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "derive({trait_name}) on {name}: only brace-bodied structs/enums are supported, got {other:?}"
        ),
    };
    let kind = match kind_kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body, &name, trait_name)),
        "enum" => Kind::Enum(parse_unit_variants(body, &name, trait_name)),
        kw => panic!("derive({trait_name}): unsupported item kind `{kw}`"),
    };
    Input { name, kind }
}

fn parse_named_fields(body: TokenStream, name: &str, trait_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            other => panic!("derive({trait_name}) on {name}: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive({trait_name}) on {name}: expected `:`, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    fields
}

fn parse_unit_variants(body: TokenStream, name: &str, trait_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => variants.push(i.to_string()),
            other => panic!("derive({trait_name}) on {name}: expected variant, got {other:?}"),
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "derive({trait_name}) on {name}: only unit enum variants are supported by the vendored serde subset"
            ),
            other => panic!("derive({trait_name}) on {name}: unexpected token {other:?}"),
        }
    }
    variants
}

/// Derives `serde::Serialize` (JSON-object / variant-name form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input, "Serialize");
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(fields) => {
            let mut b = String::from("__out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                b.push_str(&format!(
                    "::serde::ser::write_field(__out, \"{f}\", &self.{f}, {});\n",
                    i == 0
                ));
            }
            b.push_str("__out.push('}');");
            b
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::ser::write_str(__out, \"{v}\"),\n"
                ));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, __out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

/// Derives the marker trait `serde::Deserialize` (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input, "Deserialize");
    format!("impl ::serde::Deserialize for {} {{}}", parsed.name)
        .parse()
        .expect("derive(Deserialize): generated impl must parse")
}
