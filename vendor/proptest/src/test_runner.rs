//! Config, RNG, and case outcomes for the [`crate::proptest!`] runner.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented,
    /// so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the simulator-heavy suites
        // in this workspace within a sane tier-1 budget while still
        // exploring a meaningful sample. Blocks that need fewer override
        // it (and blocks that want upstream's breadth can too).
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed — the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs — the case is skipped.
    Reject(&'static str),
}

/// The deterministic RNG handed to strategies.
///
/// Seeded from the test's name, so a given test explores the same case
/// sequence on every run (see the crate docs for the trade-off).
#[derive(Debug)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}
