//! Config, RNG, and case outcomes for the [`crate::proptest!`] runner.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented,
    /// so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the simulator-heavy suites
        // in this workspace within a sane tier-1 budget while still
        // exploring a meaningful sample. Blocks that need fewer override
        // it (and blocks that want upstream's breadth can too).
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Cases to actually run: the configured count, floored by the
    /// `PROPTEST_CASES` environment variable (as upstream honors it).
    /// CI sets the floor so a block that locally trims to a handful of
    /// cases still gets real coverage on every push; the env var never
    /// *lowers* a block's own setting.
    pub fn effective_cases(&self) -> u32 {
        let floor = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(0);
        self.cases.max(floor)
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed — the test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs — the case is skipped.
    Reject(&'static str),
}

/// The deterministic RNG handed to strategies.
///
/// Each case gets its own seed, derived from the test's name and the
/// case index ([`TestRng::for_case`]), so any single case replays from
/// its seed alone — that seed is what `cc` regression entries persist.
#[derive(Debug)]
pub struct TestRng {
    rng: SmallRng,
}

/// FNV-1a over the test name: stable across runs and platforms.
pub fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The standalone seed of one case of a named test: the name hash mixed
/// with the case index through a SplitMix64 round, so consecutive cases
/// land far apart in seed space and any one replays independently.
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut z = name_hash(name) ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for the named test's whole run (legacy sequential seeding;
    /// the [`crate::proptest!`] runner now seeds per case).
    pub fn for_test(name: &str) -> Self {
        TestRng::from_seed(name_hash(name))
    }

    /// RNG for case `case` of the named test.
    pub fn for_case(name: &str, case: u32) -> Self {
        TestRng::from_seed(case_seed(name, case))
    }

    /// RNG replaying an explicit seed (persisted `cc` entries).
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}
