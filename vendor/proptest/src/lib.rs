//! Workspace-local subset of the `proptest` API.
//!
//! The build environment is offline (no registry), so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro with
//! per-block [`ProptestConfig`](test_runner::ProptestConfig), range /
//! tuple / [`Just`](strategy::Just) / [`prop_oneof!`] / `prop_map` /
//! `prop::collection::vec` / `prop::bool::ANY` strategies, and the
//! `prop_assert*` family.
//!
//! Deliberate simplifications versus upstream:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message's case number and `Debug` of the generated values where the
//!   assertion formats them) but is not minimized.
//! * **Deterministic seeding.** Upstream seeds from OS entropy; this
//!   runner derives every case's seed from the test's name and case
//!   index ([`test_runner::case_seed`]), so every CI run explores the
//!   same cases *and* any one case replays from its seed alone. That
//!   trades discovery breadth for the reproducibility this repository's
//!   tier-1 gate wants.
//!
//! Regression persistence works like upstream's: each test source file
//! may have a sibling `*.proptest-regressions` file whose `cc` entries
//! are replayed before any novel case (see [`persistence`]). A failing
//! case prints the exact `cc` line to append. The `PROPTEST_CASES`
//! environment variable floors the per-block case count
//! ([`test_runner::ProptestConfig::effective_cases`]); CI sets it so
//! trimmed-down blocks still get breadth on every push.

pub mod bool;
pub mod collection;
pub mod persistence;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u32..100, v in prop::collection::vec(0u8..4, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                // Evaluate each strategy expression once, as upstream does.
                $(let $arg = $strat;)+
                let __strats = ($(&$arg,)+);
                let mut __run = |__seed: u64| {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                    let ($($arg,)+) = {
                        let ($($arg,)+) = __strats;
                        ($($crate::strategy::Strategy::new_value($arg, &mut __rng),)+)
                    };
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    __outcome
                };
                // Persisted failures first, exactly as upstream replays
                // its *.proptest-regressions entries.
                for __seed in $crate::persistence::load_regressions(file!()) {
                    match __run(__seed) {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "persisted regression `{}` of `{}` failed: {}",
                                $crate::persistence::cc_line(__seed), stringify!($name), __msg
                            );
                        }
                    }
                }
                let __cases = __cfg.effective_cases();
                for __case in 0..__cases {
                    let __seed = $crate::test_runner::case_seed(stringify!($name), __case);
                    match __run(__seed) {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {}/{} of `{}` failed: {}\n\
                                 pin it: append `{}` to {}.proptest-regressions \
                                 (next to {})",
                                __case + 1, __cases, stringify!($name), __msg,
                                $crate::persistence::cc_line(__seed),
                                ::std::path::Path::new(file!())
                                    .file_stem().map(|s| s.to_string_lossy().into_owned())
                                    .unwrap_or_default(),
                                file!()
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case (counted as neither pass nor failure) unless
/// the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
