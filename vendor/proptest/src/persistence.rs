//! Regression-file persistence: `*.proptest-regressions` replay.
//!
//! Upstream proptest writes one sibling file per test source file and
//! re-runs every persisted `cc` entry before generating novel cases.
//! This runner honors the same file format:
//!
//! ```text
//! cc 0123456789abcdef                      # 16-hex: an exact case seed
//! cc 06d3617a...e805235f                   # 64-hex: upstream persisted seed
//! ```
//!
//! A 16-hex entry is a [`u64`] case seed exactly as this runner prints
//! it on failure — replaying it regenerates the failing inputs
//! byte-for-byte. A longer entry (upstream's 32-byte format, or any
//! other hex blob) is folded to a deterministic `u64`, so legacy
//! entries still pin a reproducible case even though the original
//! upstream byte stream cannot be reconstructed.
//!
//! Entries are per *file*, not per test: every test in the file replays
//! every entry, exactly as upstream does. The comment after `#` is for
//! humans and is ignored.

/// Case seeds persisted next to `test_file` (a `file!()` path).
///
/// Returns an empty list when no regression file exists — absence of
/// the file is the common case, not an error.
pub fn load_regressions(test_file: &str) -> Vec<u64> {
    let path = regressions_path(test_file);
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(parse_cc_line).collect()
}

/// `<dir>/<stem>.proptest-regressions` for a test source path.
fn regressions_path(test_file: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(test_file);
    match p.file_stem() {
        Some(stem) => p.with_file_name(format!("{}.proptest-regressions", stem.to_string_lossy())),
        None => p.with_extension("proptest-regressions"),
    }
}

/// Parses one `cc <hex> [# comment]` line; `None` for comments, blanks,
/// and anything malformed (upstream is equally lenient).
pub fn parse_cc_line(line: &str) -> Option<u64> {
    let line = line.trim();
    let rest = line.strip_prefix("cc ")?;
    let hex = rest.split(['#', ' ']).next()?.trim();
    if hex.is_empty() || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    if hex.len() == 16 {
        // Our own format: the case seed verbatim.
        u64::from_str_radix(hex, 16).ok()
    } else {
        // Upstream (or foreign) entry: fold the hex bytes to a stable
        // u64 so the entry still names one deterministic case.
        Some(fold_hex(hex))
    }
}

/// FNV-1a over the hex characters — stable across runs and platforms.
fn fold_hex(hex: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in hex.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `cc` line that pins `seed`, ready to append to the regression
/// file (printed in failure messages).
pub fn cc_line(seed: u64) -> String {
    format!("cc {seed:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_entries_round_trip_exactly() {
        let seed = 0x0123_4567_89ab_cdef;
        assert_eq!(parse_cc_line(&cc_line(seed)), Some(seed));
        assert_eq!(
            parse_cc_line("cc 0123456789abcdef # shrinks to x = 3"),
            Some(seed)
        );
    }

    #[test]
    fn upstream_entries_fold_deterministically() {
        let line = "cc 06d3617a7a512410cb1586083f190ccffd408a2a6fc9647ea84c6947e805235f # note";
        let a = parse_cc_line(line).expect("64-hex entries parse");
        let b = parse_cc_line(line).expect("64-hex entries parse");
        assert_eq!(a, b);
    }

    #[test]
    fn junk_lines_are_ignored() {
        for line in [
            "",
            "# comment",
            "cc",
            "cc  ",
            "cc nothex!",
            "xx 0123456789abcdef",
        ] {
            assert_eq!(parse_cc_line(line), None, "line {line:?} must not parse");
        }
    }

    #[test]
    fn regressions_path_is_a_sibling() {
        assert_eq!(
            regressions_path("tests/proptest_stack.rs"),
            std::path::Path::new("tests/proptest_stack.proptest-regressions")
        );
    }
}
