//! Boolean strategies (`prop::bool`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// A fair coin.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.rng().gen::<bool>()
    }
}
