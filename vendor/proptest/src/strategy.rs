//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// Something that can generate values of `Value` from a seeded RNG.
///
/// Unlike upstream there is no value tree / shrinking: `new_value`
/// produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among same-typed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
