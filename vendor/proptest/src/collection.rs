//! Collection strategies (`prop::collection`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: a fixed length or a half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
