//! Behavioural tests of the Pagoda runtime through its public API: the
//! Table 1 semantics, resource virtualization corner cases, and protocol
//! edge conditions.

use pagoda::prelude::*;

fn narrow(instrs: u64) -> TaskDesc {
    TaskDesc::uniform(128, WarpWork::compute(instrs, 8.0))
}

/// The explicit retry loop `submit` expects of its callers: probe, and on
/// a full CPU view refresh the table (lazy aggregate copy-back) and idle
/// one wait timeout before retrying.
fn submit_blocking(rt: &mut PagodaRuntime, t: TaskDesc) -> TaskId {
    let mut t = t;
    loop {
        match rt.submit(t) {
            Ok(id) => return id,
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                t = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
}

#[test]
fn wait_blocks_until_the_task_is_done() {
    let mut rt = PagodaRuntime::titan_x();
    let id = rt.submit(narrow(1_000_000)).unwrap();
    assert!(rt.task_latency(id).is_none(), "not done at spawn");
    rt.wait(id).unwrap();
    assert!(rt.task_latency(id).is_some());
}

#[test]
fn check_is_nonblocking_and_eventually_true() {
    let mut rt = PagodaRuntime::titan_x();
    let id = rt.submit(narrow(2_000_000)).unwrap();
    // check() may say false early; after wait() it must say true.
    let _ = rt.check(id).unwrap();
    rt.wait(id).unwrap();
    assert!(rt.check(id).unwrap());
}

#[test]
fn wait_on_already_finished_task_returns_immediately() {
    let mut rt = PagodaRuntime::titan_x();
    let a = rt.submit(narrow(10_000)).unwrap();
    let b = rt.submit(narrow(50_000_000)).unwrap();
    rt.wait(b).unwrap(); // by now `a` is long done
    let before = rt.host_now();
    rt.wait(a).unwrap();
    let after = rt.host_now();
    // Only the observation copy-back, not another task's runtime.
    assert!((after - before).as_us_f64() < 100.0);
}

#[test]
fn spawning_more_tasks_than_table_entries_recycles_entries() {
    // 48 x 32 = 1536 entries; 4000 spawns force the lazy aggregate
    // copy-back path repeatedly.
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..4000 {
        submit_blocking(&mut rt, narrow(20_000));
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 4000);
}

#[test]
fn single_task_runs_via_the_flush_path() {
    // A lone task has no successor to advance the pipeline; only the
    // timeout-driven flush of §4.2.2 can schedule it.
    let mut rt = PagodaRuntime::titan_x();
    let id = rt.submit(narrow(100_000)).unwrap();
    rt.wait(id).unwrap();
    assert!(rt.check(id).unwrap());
}

#[test]
fn interleaved_spawn_wait_cycles() {
    // wait() flushes the chain; subsequent spawns must start a new chain
    // and still execute.
    let mut rt = PagodaRuntime::titan_x();
    for round in 0..5 {
        let ids: Vec<_> = (0..10)
            .map(|_| rt.submit(narrow(50_000)).unwrap())
            .collect();
        rt.wait(ids[0]).unwrap();
        rt.wait_all();
        assert_eq!(rt.report().tasks, (round + 1) * 10);
    }
}

#[test]
fn smem_tasks_share_the_mtb_pool() {
    // 16 KB per threadblock: only 2 task TBs fit an MTB's 32 KB slice at
    // once; the buddy allocator must recycle across many tasks.
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..300 {
        let mut t = narrow(50_000);
        t.smem_per_tb = 16 * 1024;
        submit_blocking(&mut rt, t);
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 300);
}

#[test]
fn full_pool_smem_tasks_serialize_but_complete() {
    // 32 KB tasks: exactly one per MTB at a time; the do/while alloc loop
    // with deferred deallocation must not deadlock.
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..100 {
        let mut t = narrow(30_000);
        t.smem_per_tb = 32 * 1024;
        submit_blocking(&mut rt, t);
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 100);
}

#[test]
fn sync_tasks_exercise_named_barriers() {
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..200 {
        rt.submit(TaskDesc::uniform(128, WarpWork::phased(80_000, 4, 8.0)))
            .unwrap();
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 200);
}

#[test]
fn many_sync_tasks_exhaust_and_recycle_barrier_ids() {
    // 31 single-warp sync tasks can run per MTB — more than the 16
    // barrier IDs, so allocation must stall and recycle.
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..500 {
        rt.submit(TaskDesc::uniform(32, WarpWork::phased(40_000, 2, 8.0)))
            .unwrap();
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 500);
}

#[test]
fn multi_threadblock_tasks_schedule_tb_by_tb() {
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..50 {
        let work = WarpWork::compute(30_000, 8.0);
        let t = TaskDesc {
            threads_per_tb: 128,
            num_tbs: 4,
            smem_per_tb: 2048,
            sync: false,
            blocks: vec![BlockWork::uniform(4, work.clone()); 4],
            input_bytes: 0,
            output_bytes: 0,
            cpu_ops: 4 * 4 * 30_000,
        };
        rt.submit(t).unwrap();
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 50);
}

#[test]
fn wide_task_spanning_all_executors() {
    // A 992-thread task occupies every executor warp of one MTB.
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..60 {
        rt.submit(TaskDesc::uniform(992, WarpWork::compute(100_000, 8.0)))
            .unwrap();
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 60);
}

#[test]
fn task_bigger_than_one_mtb_is_rejected() {
    let mut rt = PagodaRuntime::titan_x();
    let t = TaskDesc::uniform(1000, WarpWork::compute(1, 1.0));
    assert!(matches!(
        rt.submit(t),
        Err(SubmitError::Invalid(TaskError::TooManyThreadsPerTb { .. }))
    ));
}

#[test]
fn oversized_smem_is_rejected() {
    let mut rt = PagodaRuntime::titan_x();
    let mut t = narrow(1);
    t.smem_per_tb = 33 * 1024;
    assert!(matches!(
        rt.submit(t),
        Err(SubmitError::Invalid(TaskError::SmemTooLarge { .. }))
    ));
}

#[test]
fn zero_work_tasks_complete() {
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..64 {
        rt.submit(narrow(0)).unwrap();
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks, 64);
}

#[test]
fn mixed_width_tasks_pack_executors() {
    let mut rt = PagodaRuntime::titan_x();
    for i in 0..300u32 {
        let threads = [32u32, 96, 128, 256, 480][i as usize % 5];
        submit_blocking(
            &mut rt,
            TaskDesc::uniform(threads, WarpWork::compute(60_000, 8.0)),
        );
    }
    rt.wait_all();
    let r = rt.report();
    assert_eq!(r.tasks, 300);
    assert!(r.avg_running_occupancy > 0.0);
}

#[test]
fn io_heavy_tasks_account_pcie_time() {
    let mut rt = PagodaRuntime::titan_x();
    for _ in 0..100 {
        let mut t = narrow(10_000);
        t.input_bytes = 64 * 1024;
        t.output_bytes = 64 * 1024;
        rt.submit(t).unwrap();
    }
    rt.wait_all();
    let r = rt.report();
    // 100 x 64 KB at 12 GB/s is ≥ 530 us on each channel.
    assert!(r.h2d_busy.as_us_f64() > 500.0);
    assert!(r.d2h_busy.as_us_f64() > 500.0);
}

#[test]
fn report_latency_metrics_are_consistent() {
    let mut rt = PagodaRuntime::titan_x();
    let ids: Vec<_> = (0..50)
        .map(|_| rt.submit(narrow(100_000)).unwrap())
        .collect();
    rt.wait_all();
    let r = rt.report();
    let mean = r.mean_task_latency.as_us_f64();
    let max = ids
        .iter()
        .map(|&i| rt.task_latency(i).unwrap().as_us_f64())
        .fold(0.0f64, f64::max);
    assert!(mean <= max + 1e-9);
    assert!(r.compute_done.as_ps() <= r.makespan.as_ps());
}
