//! Cross-crate integration: every runtime scheme executes the same
//! workloads to completion, and the paper's qualitative claims hold at
//! test scale.

use pagoda::prelude::*;
use workloads::Bench;

fn opts() -> GenOpts {
    GenOpts::default()
}

#[test]
fn all_benchmarks_complete_on_all_gpu_runtimes() {
    for b in Bench::ALL {
        let tasks = b.tasks(96, &opts());
        let n = tasks.len() as u64;

        let pg = run_pagoda(PagodaConfig::default(), &tasks);
        assert_eq!(pg.tasks, n, "Pagoda lost tasks on {}", b.name());

        let hq = run_hyperq(&HyperQConfig::default(), &tasks);
        assert_eq!(hq.tasks, n, "HyperQ lost tasks on {}", b.name());

        if b.supports_gemtc() {
            let plain = b.tasks(
                96,
                &GenOpts {
                    use_smem: false,
                    ..opts()
                },
            );
            let cfg = GemtcConfig {
                worker_threads: plain.iter().map(|t| t.threads_per_tb).max().unwrap(),
                ..GemtcConfig::default()
            };
            let gm = run_gemtc(&cfg, &plain);
            assert_eq!(
                gm.tasks,
                plain.len() as u64,
                "GeMTC lost tasks on {}",
                b.name()
            );
        }
    }
}

#[test]
fn pagoda_beats_hyperq_beyond_512_tasks() {
    // Fig. 6's finding: once the task count exceeds what 32 concurrent
    // kernels can occupy, Pagoda pulls ahead.
    let tasks = Bench::Fb.tasks(1024, &opts());
    let pg = run_pagoda(PagodaConfig::default(), &tasks);
    let hq = run_hyperq(&HyperQConfig::default(), &tasks);
    assert!(
        pg.makespan < hq.makespan,
        "Pagoda {} vs HyperQ {}",
        pg.makespan,
        hq.makespan
    );
}

#[test]
fn small_task_counts_do_not_favor_pagoda_much() {
    // Fig. 6's other half: at 64 tasks nobody fills the GPU; HyperQ is
    // within ~2x of Pagoda rather than the >1.5x gap seen at scale.
    let tasks = Bench::Conv.tasks(64, &opts());
    let pg = run_pagoda(PagodaConfig::default(), &tasks);
    let hq = run_hyperq(&HyperQConfig::default(), &tasks);
    let ratio = pg.speedup_over(&hq);
    assert!(ratio < 2.0, "tiny run should be close, got {ratio}x");
}

#[test]
fn gpu_runtimes_beat_20_core_cpu_at_scale() {
    for b in [Bench::Mb, Bench::Fb, Bench::Conv] {
        let tasks = b.tasks(1024, &opts());
        let pg = run_pagoda(PagodaConfig::default(), &tasks);
        let pth = run_pthreads(&CpuConfig::default(), &tasks);
        assert!(
            pg.speedup_over(&pth) > 1.5,
            "{} should favor the GPU",
            b.name()
        );
    }
}

#[test]
fn copy_bound_dct_shows_small_gpu_wins() {
    // Table 3/Fig. 5: DCT moves 64 KB per task each way; no GPU runtime
    // can beat the copy chain by much.
    let tasks = Bench::Dct.tasks(512, &opts());
    let pg = run_pagoda(PagodaConfig::default(), &tasks);
    let hq = run_hyperq(&HyperQConfig::default(), &tasks);
    let ratio = pg.speedup_over(&hq);
    assert!(
        (0.7..1.6).contains(&ratio),
        "DCT is copy-bound, got {ratio}x"
    );
}

#[test]
fn batching_ablation_is_slower_than_continuous() {
    // Fig. 11: removing continuous spawning costs real time.
    let tasks = Bench::Mpe.tasks(1024, &opts());
    let cont = run_pagoda(PagodaConfig::default(), &tasks);
    let batched = baselines::run_pagoda_batched(PagodaConfig::default(), &tasks, 384);
    assert!(
        cont.makespan < batched.makespan,
        "continuous {} vs batched {}",
        cont.makespan,
        batched.makespan
    );
}

#[test]
fn fused_task_latency_grows_with_batch_while_pagoda_stays_flat() {
    // Fig. 10.
    let small = Bench::Mm.tasks(128, &opts());
    let large = Bench::Mm.tasks(2048, &opts());
    let f_small = run_fusion(&FusionConfig::default(), &small, 256);
    let f_large = run_fusion(&FusionConfig::default(), &large, 256);
    assert!(
        f_large.mean_task_latency.as_ps() > 4 * f_small.mean_task_latency.as_ps(),
        "fused latency must grow ~linearly: {} vs {}",
        f_small.mean_task_latency,
        f_large.mean_task_latency,
    );
    // Pagoda's latency plateaus once the 1536-entry TaskTable throttles
    // admission; beyond that point it stays flat while fusion keeps
    // growing linearly (a 4x task increase here).
    let plateau_a = run_pagoda(PagodaConfig::default(), &Bench::Mm.tasks(2048, &opts()));
    let plateau_b = run_pagoda(PagodaConfig::default(), &Bench::Mm.tasks(8192, &opts()));
    let growth =
        plateau_b.mean_task_latency.as_secs_f64() / plateau_a.mean_task_latency.as_secs_f64();
    assert!(
        growth < 2.0,
        "Pagoda latency should stay near-flat past the table size, grew {growth}x"
    );
}

#[test]
fn slud_waves_run_through_pagoda() {
    let waves = workloads::slud::waves_as_tasks(12, workloads::slud::DENSITY, &opts());
    let total: usize = waves.iter().map(Vec::len).sum();
    let mut rt = PagodaRuntime::titan_x();
    for w in &waves {
        for t in w {
            let mut t = t.clone();
            loop {
                match rt.submit(t) {
                    Ok(_) => break,
                    Err(SubmitError::Full(desc)) => {
                        rt.sync_table();
                        if !rt.capacity().has_room() {
                            let timeout = rt.config().wait_timeout;
                            rt.advance_to(rt.host_now() + timeout);
                        }
                        t = desc;
                    }
                    Err(e) => panic!("unspawnable SLUD task: {e}"),
                }
            }
        }
        rt.wait_all();
    }
    assert_eq!(rt.report().tasks as usize, total);
}

#[test]
fn functional_outputs_are_runtime_independent() {
    // The algorithms themselves do not depend on which runtime schedules
    // them: the same packet encrypts to the same bytes, the same frame
    // transforms to the same coefficients. (Timing simulation and
    // functional computation are decoupled by design.)
    let (k1, k2, k3) = (0x0123456789ABCDEF, 0x23456789ABCDEF01, 0x456789ABCDEF0123);
    let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
    let a = workloads::des3::encrypt_packet(&data, k1, k2, k3);
    let b = workloads::des3::encrypt_packet(&data, k1, k2, k3);
    assert_eq!(a, b);
    let img: Vec<f32> = (0..64 * 64).map(|i| (i % 97) as f32).collect();
    assert_eq!(
        workloads::dct::dct_image(&img, 64),
        workloads::dct::dct_image(&img, 64)
    );
}
