//! Determinism: the whole stack — generators, DES engine, runtimes — must
//! produce bit-identical results across repeated runs. This is what makes
//! every figure in EXPERIMENTS.md reproducible.

use pagoda::prelude::*;
use workloads::Bench;

fn run_pagoda_once(seed: u64) -> (u64, u64, u64) {
    let opts = GenOpts { seed, ..GenOpts::default() };
    let tasks = Bench::Mpe.tasks(256, &opts);
    let r = run_pagoda(PagodaConfig::default(), &tasks);
    (r.makespan.as_ps(), r.compute_done.as_ps(), r.tasks)
}

#[test]
fn pagoda_runs_are_bit_identical() {
    assert_eq!(run_pagoda_once(7), run_pagoda_once(7));
}

#[test]
fn seeds_change_irregular_workloads() {
    assert_ne!(run_pagoda_once(7), run_pagoda_once(8));
}

#[test]
fn hyperq_and_gemtc_are_deterministic() {
    let tasks = Bench::Des3.tasks(256, &GenOpts::default());
    let a = run_hyperq(&HyperQConfig::default(), &tasks);
    let b = run_hyperq(&HyperQConfig::default(), &tasks);
    assert_eq!(a.makespan, b.makespan);
    let mut cfg = GemtcConfig::default();
    cfg.worker_threads = 128;
    let c = run_gemtc(&cfg, &tasks);
    let d = run_gemtc(&cfg, &tasks);
    assert_eq!(c.makespan, d.makespan);
}

#[test]
fn fusion_and_cpu_are_deterministic() {
    let tasks = Bench::Mm.tasks(128, &GenOpts::default());
    assert_eq!(
        run_fusion(&FusionConfig::default(), &tasks, 256).makespan,
        run_fusion(&FusionConfig::default(), &tasks, 256).makespan
    );
    assert_eq!(
        run_pthreads(&CpuConfig::default(), &tasks).makespan,
        run_pthreads(&CpuConfig::default(), &tasks).makespan
    );
}

#[test]
fn generator_determinism_across_all_benchmarks() {
    for b in Bench::ALL {
        let o = GenOpts::default();
        let a: Vec<u64> = b.tasks(64, &o).iter().map(|t| t.total_instrs()).collect();
        let c: Vec<u64> = b.tasks(64, &o).iter().map(|t| t.total_instrs()).collect();
        assert_eq!(a, c, "{} generation must be deterministic", b.name());
    }
}
