//! Determinism: the whole stack — generators, DES engine, runtimes — must
//! produce bit-identical results across repeated runs. This is what makes
//! every figure in EXPERIMENTS.md reproducible.

use pagoda::pagoda_serve::serving_slice;
use pagoda::prelude::*;
use workloads::Bench;

fn run_pagoda_once(seed: u64) -> (u64, u64, u64) {
    let opts = GenOpts {
        seed,
        ..GenOpts::default()
    };
    let tasks = Bench::Mpe.tasks(256, &opts);
    let r = run_pagoda(PagodaConfig::default(), &tasks);
    (r.makespan.as_ps(), r.compute_done.as_ps(), r.tasks)
}

#[test]
fn pagoda_runs_are_bit_identical() {
    assert_eq!(run_pagoda_once(7), run_pagoda_once(7));
}

#[test]
fn seeds_change_irregular_workloads() {
    assert_ne!(run_pagoda_once(7), run_pagoda_once(8));
}

#[test]
fn hyperq_and_gemtc_are_deterministic() {
    let tasks = Bench::Des3.tasks(256, &GenOpts::default());
    let a = run_hyperq(&HyperQConfig::default(), &tasks);
    let b = run_hyperq(&HyperQConfig::default(), &tasks);
    assert_eq!(a.makespan, b.makespan);
    let cfg = GemtcConfig {
        worker_threads: 128,
        ..GemtcConfig::default()
    };
    let c = run_gemtc(&cfg, &tasks);
    let d = run_gemtc(&cfg, &tasks);
    assert_eq!(c.makespan, d.makespan);
}

#[test]
fn fusion_and_cpu_are_deterministic() {
    let tasks = Bench::Mm.tasks(128, &GenOpts::default());
    assert_eq!(
        run_fusion(&FusionConfig::default(), &tasks, 256).makespan,
        run_fusion(&FusionConfig::default(), &tasks, 256).makespan
    );
    assert_eq!(
        run_pthreads(&CpuConfig::default(), &tasks).makespan,
        run_pthreads(&CpuConfig::default(), &tasks).makespan
    );
}

// The same serving experiment serve_curves sweeps: a device slice,
// bursty + deadline tenants, overload. Same seed ⇒ byte-identical
// serialized metric records and report.
fn serve_curves_style_run(policy: Policy, seed: u64) -> (String, String) {
    let mut packets = TenantSpec::new("packets", Bench::Des3, 4.0e5);
    packets.weight = 2;
    packets.queue_cap = 32;
    packets.deadline = Some(Dur::from_us(1_500));
    let mut tiles = TenantSpec::new("tiles", Bench::Mb, 0.0);
    tiles.queue_cap = 32;
    tiles.arrival = ArrivalSpec::Mmpp {
        calm_rate_per_s: 1.0e5,
        burst_rate_per_s: 4.0e5,
        mean_calm_us: 300.0,
        mean_burst_us: 100.0,
    };
    let mut cfg = ServeConfig::new(vec![packets, tiles], policy);
    cfg.tasks_per_tenant = 96;
    cfg.seed = seed;
    cfg.mix = "determinism".into();
    cfg.cancel_late = policy == Policy::Edf;
    cfg.runtime = serving_slice(2).expect("nonzero slice");
    let out = serve(&cfg).expect("valid serving config");
    (
        serde_json::to_string(&out.records).expect("records serialize"),
        serde_json::to_string(&out.report).expect("report serializes"),
    )
}

#[test]
fn serve_metric_records_are_byte_identical() {
    for policy in [Policy::Fifo, Policy::WeightedFair, Policy::Edf] {
        let (rec_a, rep_a) = serve_curves_style_run(policy, 42);
        let (rec_b, rep_b) = serve_curves_style_run(policy, 42);
        assert_eq!(rec_a, rec_b, "{policy:?} records must be byte-identical");
        assert_eq!(rep_a, rep_b, "{policy:?} report must be byte-identical");
    }
}

#[test]
fn serve_seeds_change_the_records() {
    let (rec_a, _) = serve_curves_style_run(Policy::Fifo, 42);
    let (rec_b, _) = serve_curves_style_run(Policy::Fifo, 43);
    assert_ne!(rec_a, rec_b, "different seeds must change arrival timing");
}

// Observability must not perturb determinism: two identical runs with a
// MemRecorder attached at every layer produce byte-identical buffers.
fn observed_pagoda_run(seed: u64) -> String {
    let opts = GenOpts {
        seed,
        ..GenOpts::default()
    };
    let tasks = Bench::Mpe.tasks(192, &opts);
    let (obs, rec) = Obs::recording();
    run_pagoda_with_obs(PagodaConfig::default(), &tasks, obs);
    rec.snapshot().to_json()
}

#[test]
fn recorder_buffers_are_byte_identical_across_runs() {
    let a = observed_pagoda_run(11);
    let b = observed_pagoda_run(11);
    assert_eq!(a, b, "observed runs must be byte-identical");
    assert!(a.len() > 2, "the recorder actually captured events");
    let c = observed_pagoda_run(12);
    assert_ne!(a, c, "a different seed must change the recorded history");
}

// The obs handle attaches through the serving layer too, and recording
// does not change what serve() returns.
#[test]
fn serve_with_recorder_matches_serve_without() {
    let mk = |obs: Obs| {
        let mut t = TenantSpec::new("t", Bench::Des3, 3.0e5);
        t.queue_cap = 16;
        let mut cfg = ServeConfig::new(vec![t], Policy::Fifo);
        cfg.tasks_per_tenant = 48;
        cfg.seed = 5;
        cfg.obs = obs;
        serde_json::to_string(&serve(&cfg).expect("valid config").records)
            .expect("records serialize")
    };
    let (obs, rec) = Obs::recording();
    assert_eq!(mk(Obs::off()), mk(obs));
    let buf = rec.snapshot();
    assert_eq!(buf.counter(Counter::AdmissionAdmitted), 48);
}

#[test]
fn generator_determinism_across_all_benchmarks() {
    for b in Bench::ALL {
        let o = GenOpts::default();
        let a: Vec<u64> = b.tasks(64, &o).iter().map(|t| t.total_instrs()).collect();
        let c: Vec<u64> = b.tasks(64, &o).iter().map(|t| t.total_instrs()).collect();
        assert_eq!(a, c, "{} generation must be deterministic", b.name());
    }
}
