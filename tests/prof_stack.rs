//! Profiler stack tests: golden-file byte-stability of the `pagoda-prof`
//! exports, serial/parallel driver equivalence, and the telescoping
//! phase contract on a real served workload.
//!
//! The goldens live in `tests/golden/`. They are byte-exact on purpose:
//! the exports are integer-only (picoseconds, counts) precisely so that
//! a determinism regression anywhere in the stack — engine, fleet
//! merge, recorder replay, profiler aggregation — shows up as a diff
//! here. Regenerate after an intentional stream change with
//! `PAGODA_UPDATE_GOLDEN=1 cargo test --test prof_stack`.

use pagoda_cluster::{ClusterConfig, ClusterHandle};
use pagoda_prof::{
    check_exposition, diff_reports, write_folded, write_prometheus, Phase, ProfRecorder,
    ProfReport, SloSpec,
};
use pagoda_serve::{serve_on, Policy, ServeConfig, TenantSpec};
use workloads::Bench;

/// A small deterministic two-tenant mix on a two-device fleet.
fn profiled_run(parallel: bool) -> (ProfReport, String) {
    let mut alpha = TenantSpec::new("alpha", Bench::Des3, 4.0e5);
    alpha.queue_cap = 64;
    alpha.weight = 2;
    alpha.slo = Some(SloSpec::p99_us(2_000));
    let mut beta = TenantSpec::new("beta", Bench::Dct, 2.0e5);
    beta.queue_cap = 64;
    let mut cfg = ServeConfig::new(vec![alpha, beta], Policy::WeightedFair);
    cfg.tasks_per_tenant = 64;
    cfg.mix = "prof-golden".into();
    let (obs, rec) = ProfRecorder::recording();
    cfg.obs = obs;
    let mut ccfg = ClusterConfig::uniform(2);
    ccfg.parallel = parallel;
    let mut fleet = ClusterHandle::new(ccfg).expect("uniform config is valid");
    let out = serve_on(&cfg, &mut fleet).expect("golden config serves");
    let slo_json = serde_json::to_string(&out.report.slo).expect("slo reports serialize");
    (rec.report(), slo_json)
}

fn render(report: &ProfReport) -> (String, String) {
    let mut prom = Vec::new();
    write_prometheus(report, &mut prom).expect("render exposition");
    let mut folded = Vec::new();
    write_folded(report, &mut folded).expect("render folded stacks");
    (
        String::from_utf8(prom).expect("exposition is utf-8"),
        String::from_utf8(folded).expect("folded is utf-8"),
    )
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PAGODA_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {} ({e}); regenerate with PAGODA_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} diverged from the committed golden; if the stream change is \
         intentional, regenerate with PAGODA_UPDATE_GOLDEN=1",
    );
}

#[test]
fn exports_match_the_committed_goldens() {
    let (report, slo) = profiled_run(false);
    let (prom, folded) = render(&report);
    check_exposition(&prom).expect("exposition parses");
    assert_golden("prof.prom", &prom);
    assert_golden("prof.folded", &folded);
    assert_golden("slo.json", &slo);
}

#[test]
fn parallel_driver_exports_are_byte_identical() {
    let (serial, serial_slo) = profiled_run(false);
    let (parallel, parallel_slo) = profiled_run(true);
    assert_eq!(render(&serial), render(&parallel));
    assert_eq!(serial_slo, parallel_slo);
    assert_eq!(serial, parallel);
}

#[test]
fn phases_partition_sojourn_in_every_group() {
    let (report, _) = profiled_run(false);
    assert!(report.total().tasks > 0, "the run must complete tasks");
    for g in &report.groups {
        let phase_sum: u64 = Phase::ALL.iter().map(|&p| g.phase_total_ps(p)).sum();
        assert_eq!(phase_sum, g.sojourn.sum(), "group {}", g.label);
    }
}

#[test]
fn self_diff_is_clean_and_regressions_are_flagged() {
    let (base, _) = profiled_run(false);
    let diff = diff_reports(&base, &base, 5, 1_000);
    assert!(diff.clean(), "a report cannot regress against itself");

    // Blow one phase's mean well past the floor: must flag.
    let mut worse = base.clone();
    let g = &mut worse.groups[0];
    let (i, old_mean) = Phase::ALL
        .iter()
        .map(|&p| (p as usize, g.phases[p as usize].mean()))
        .find(|&(_, m)| m > 1_000)
        .expect("some phase has measurable time");
    for _ in 0..g.phases[i].count() {
        g.phases[i].record(old_mean * 100);
    }
    let diff = diff_reports(&base, &worse, 5, 1_000);
    assert!(!diff.clean());
    assert!(diff.regressed().next().is_some());
}
