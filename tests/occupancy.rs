//! Utilization claims from §2 and §6 of the paper, measured through the
//! public API.

use pagoda::prelude::*;
use workloads::Bench;

#[test]
fn section2_occupancy_arithmetic() {
    let g = GpuSpec::titan_x();
    // One 256-thread task alone: 0.52 %.
    assert!((g.occupancy(8) * 100.0 - 0.52).abs() < 0.01);
    // 32 of them under HyperQ: 16.67 %.
    assert!((g.occupancy(256) * 100.0 - 16.67).abs() < 0.01);
    // The MasterKernel: 100 %.
    let mk = TaskShape {
        threads_per_tb: 1024,
        num_tbs: 48,
        regs_per_thread: 32,
        smem_per_tb: 32 * 1024,
    };
    assert_eq!(g.occupancy_of(&mk).unwrap().occupancy, 1.0);
}

#[test]
fn pagoda_sustains_higher_running_occupancy_than_hyperq() {
    let tasks = Bench::Mb.tasks(
        2048,
        &GenOpts {
            with_io: false,
            ..GenOpts::default()
        },
    );
    let pg = run_pagoda(PagodaConfig::default(), &tasks);
    let hq = run_hyperq(&HyperQConfig::default(), &tasks);
    assert!(
        pg.avg_running_occupancy > 2.0 * hq.avg_running_occupancy,
        "Pagoda {:.3} vs HyperQ {:.3}",
        pg.avg_running_occupancy,
        hq.avg_running_occupancy
    );
}

#[test]
fn hyperq_occupancy_capped_by_32_kernels() {
    // 128-thread kernels: 32 concurrent x 4 warps = 128 warps of 1536
    // -> running occupancy can never exceed ~8.3 %.
    let tasks: Vec<TaskDesc> = (0..2048)
        .map(|_| TaskDesc::uniform(128, WarpWork::compute(2_000_000, 8.0)))
        .collect();
    let hq = run_hyperq(&HyperQConfig::default(), &tasks);
    assert!(
        hq.avg_running_occupancy < 0.1,
        "got {:.3}",
        hq.avg_running_occupancy
    );
}

#[test]
fn gemtc_reaches_full_residency_at_128_threads() {
    // The paper's modified GeMTC: 128-thread workers give 16 TBs/SMM
    // = 64 warps = 100 % resident occupancy, so on *regular* work its
    // running occupancy is high.
    let tasks: Vec<TaskDesc> = (0..4096)
        .map(|_| TaskDesc::uniform(128, WarpWork::compute(2_000_000, 8.0)))
        .collect();
    let gm = run_gemtc(&GemtcConfig::default(), &tasks);
    assert!(
        gm.avg_running_occupancy > 0.5,
        "got {:.3}",
        gm.avg_running_occupancy
    );
}
