//! End-to-end: the serving front-end riding a faulty fleet.
//!
//! `serve_on` drives a 4-device [`ClusterHandle`] through the shared
//! [`Backend`] trait while a kill fault takes one device down
//! mid-stream. Under [`RetryPolicy::Resubmit`] the fleet must lose
//! nothing: every offered task completes, admitted-task p99 stays
//! finite, and the whole run holds under the pagoda-check invariant
//! checker (observability stream) and QoS auditor (scheduler traffic)
//! at once — the full stack, checked at every layer it crosses.

use pagoda_check::{CheckLimits, CheckRecorder, QosCheck};
use pagoda_cluster::{ClusterConfig, ClusterHandle, FaultKind, FaultSpec, RetryPolicy};
use pagoda_serve::{percentile, serve_on, Outcome, Policy, ServeConfig, TenantSpec};
use workloads::Bench;

#[test]
fn serve_survives_device_kill_without_losing_tasks() {
    const DEVICES: usize = 4;
    const TENANTS: usize = 4;
    const TASKS_PER_TENANT: usize = 32;

    let mut ccfg = ClusterConfig::uniform(DEVICES);
    ccfg.retry = RetryPolicy::Resubmit { max_attempts: 3 };
    ccfg.faults = vec![FaultSpec {
        at: desim::SimTime::from_us(30),
        device: 1,
        kind: FaultKind::Kill,
    }];
    let limits = CheckLimits::of(&ccfg.devices[0]);
    let mut fleet = ClusterHandle::new(ccfg).expect("uniform config is valid");

    let tenants: Vec<TenantSpec> = (0..TENANTS)
        .map(|i| {
            let mut t = TenantSpec::new(&format!("t{i}"), Bench::Des3, 6e5);
            // No shedding: "loses zero tasks" must mean every *offered*
            // task, not just the ones admission let through.
            t.queue_cap = usize::MAX;
            t
        })
        .collect();
    let mut scfg = ServeConfig::new(tenants, Policy::Fifo);
    scfg.tasks_per_tenant = TASKS_PER_TENANT;
    scfg.mix = "kill-one-device".into();
    let (obs, checker) = CheckRecorder::recording(Some(limits));
    scfg.obs = obs;
    let audit = std::sync::Arc::new(QosCheck::fifo());
    scfg.qos_audit = Some(audit.clone());

    let out = serve_on(&scfg, &mut fleet).expect("mix serves");
    let rep = fleet.report();

    // The fault landed, and nothing was lost to it.
    assert_eq!(rep.kills, 1, "the scheduled kill must apply");
    assert_eq!(rep.tasks_lost, 0, "resubmit policy must save every task");
    assert!(
        rep.resubmits > 0,
        "a 30 us kill under open-loop load must strand in-flight work"
    );

    // Every offered arrival ran to completion with a measured sojourn.
    let offered = TENANTS * TASKS_PER_TENANT;
    assert_eq!(out.records.len(), offered);
    let sojourns: Vec<f64> = out
        .records
        .iter()
        .map(|r| {
            assert_eq!(r.outcome, Outcome::Done, "task {} did not finish", r.seq);
            r.sojourn_us.expect("done tasks have a sojourn")
        })
        .collect();
    let p99 = percentile(&sojourns, 99.0);
    assert!(
        p99.is_finite() && p99 > 0.0,
        "p99 must be finite, got {p99}"
    );

    // The invariant checker watched the whole run: lifecycle order,
    // conservation, merge order, causality, device liveness.
    let violations = checker.finish();
    assert!(violations.is_empty(), "invariants broken: {violations:?}");
    // And the FIFO contract held across every push/pop/requeue.
    assert!(audit.is_clean(), "qos audit: {:?}", audit.violations());
}
