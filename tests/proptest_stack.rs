//! Property-based tests over the whole stack: random task mixes must
//! always complete — no deadlock, no lost tasks, no protocol panic — and
//! conservation laws must hold.
//!
//! # Regressions
//!
//! `proptest_stack.proptest-regressions` (sibling of this file) holds
//! `cc` seed entries that replay before any novel case, for every test
//! in this file. A failing case prints the exact `cc` line to append;
//! see the format notes at the top of the regressions file. CI floors
//! the per-block case counts with `PROPTEST_CASES` (ci.sh), so the
//! trimmed local counts below still get breadth on every push.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use desim::{Engine, EventKey, SimTime};
use pagoda::prelude::*;
use proptest::prelude::*;

/// An arbitrary valid narrow task.
fn arb_task() -> impl Strategy<Value = TaskDesc> {
    (
        1u32..=992,      // threads
        0u64..400_000,   // instrs per warp
        prop::bool::ANY, // sync
        0u32..=4,        // smem in 8KB units
        0u64..32_768,    // input bytes
        0u64..32_768,    // output bytes
    )
        .prop_map(|(threads, instrs, sync, smem8k, inb, outb)| {
            let work = if sync && instrs > 0 {
                WarpWork::phased(instrs, 3, 8.0)
            } else {
                WarpWork::compute(instrs, 8.0)
            };
            let mut t = TaskDesc::uniform(threads, work);
            t.smem_per_tb = smem8k * 8 * 1024;
            t.input_bytes = inb;
            t.output_bytes = outb;
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full co-simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn pagoda_completes_any_task_mix(tasks in prop::collection::vec(arb_task(), 1..60)) {
        let n = tasks.len() as u64;
        let r = run_pagoda(PagodaConfig::default(), &tasks);
        prop_assert_eq!(r.tasks, n);
        prop_assert!(r.compute_done.as_ps() <= r.makespan.as_ps());
    }

    #[test]
    fn hyperq_completes_any_task_mix(tasks in prop::collection::vec(arb_task(), 1..60)) {
        let r = run_hyperq(&HyperQConfig::default(), &tasks);
        prop_assert_eq!(r.tasks, tasks.len() as u64);
    }

    #[test]
    fn pagoda_makespan_is_monotone_in_prefixes(tasks in prop::collection::vec(arb_task(), 2..40)) {
        // Running a prefix of the task list can never take (much) longer
        // than the full list. "Much": the prefix's final task relies on
        // the timeout-driven flush (§4.2.2) — a read-check-write over
        // PCIe retried on 20 us polling ticks — while the full run's
        // extra tasks advance the pipeline for free, so the prefix can
        // legitimately trail by a handful of polling periods.
        let half = tasks.len() / 2;
        let full = run_pagoda(PagodaConfig::default(), &tasks);
        let part = run_pagoda(PagodaConfig::default(), &tasks[..half.max(1)]);
        let slack = desim::Dur::from_us(200);
        prop_assert!(
            part.makespan.as_ps() <= full.makespan.as_ps() + slack.as_ps(),
            "prefix {} vs full {}", part.makespan, full.makespan
        );
    }

    #[test]
    fn cpu_model_is_additive(tasks in prop::collection::vec(arb_task(), 1..50)) {
        // Sequential makespan equals the sum of task times *at the
        // single-core rate* (one core alone is not bandwidth-capped).
        let seq = run_sequential(&CpuConfig::default(), &tasks);
        let one_core = CpuConfig { cores: 1, ..CpuConfig::default() };
        let sum: f64 = tasks
            .iter()
            .map(|t| baselines::cpu::cpu_task_time(&one_core, t).as_secs_f64())
            .sum();
        let diff = (seq.makespan.as_secs_f64() - sum).abs();
        prop_assert!(diff < 1e-9, "makespan {} vs sum {}", seq.makespan.as_secs_f64(), sum);
    }
}

/// One step of random event-queue traffic for the heap-oracle property.
#[derive(Debug, Clone, Copy)]
enum HeapOp {
    /// Schedule a fresh event `dt` ps from now.
    Schedule { dt: u64 },
    /// Cancel the `pick`-th key ever issued (may already be dead).
    Cancel { pick: usize },
    /// Re-aim the `pick`-th key ever issued at now + `dt`.
    Reschedule { pick: usize, dt: u64 },
    /// Deliver the next event.
    Pop,
}

fn arb_heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        (0u64..5_000).prop_map(|dt| HeapOp::Schedule { dt }),
        (0usize..256).prop_map(|pick| HeapOp::Cancel { pick }),
        ((0usize..256), (0u64..5_000)).prop_map(|(pick, dt)| HeapOp::Reschedule { pick, dt }),
        Just(HeapOp::Pop),
        Just(HeapOp::Pop), // weight pops up so queues drain as well as grow
    ]
}

/// The event queue the indexed engine replaced: a lazy-deletion binary
/// heap that tombstones cancelled ids and skips them at pop. Kept here
/// as the behavioral oracle — the indexed heap must deliver the exact
/// `(time, seq)` order this produces, including the fresh-seq semantics
/// of reschedule (modeled as cancel + schedule of a replacement).
struct LazyOracle {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// seq → payload for events not yet delivered or cancelled.
    live: HashMap<u64, u32>,
}

impl LazyOracle {
    fn new() -> Self {
        LazyOracle {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            live: HashMap::new(),
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, payload);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.live.remove(&seq).is_some()
    }

    /// Cancel + schedule a replacement carrying the same payload; the
    /// replacement's id is returned so the caller can keep tracking it.
    fn reschedule(&mut self, seq: u64, at: SimTime) -> Option<u64> {
        let payload = self.live.remove(&seq)?;
        Some(self.schedule(at, payload))
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(payload) = self.live.remove(&seq) {
                self.now = at;
                return Some((at, payload));
            }
        }
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn indexed_heap_matches_lazy_deletion_oracle(
        ops in prop::collection::vec(arb_heap_op(), 1..400),
    ) {
        let mut eng: Engine<u32> = Engine::new();
        let mut oracle = LazyOracle::new();
        // Every key ever issued, engine-side and oracle-side in lockstep.
        // Reschedule keeps the engine key but replaces the oracle id.
        let mut keys: Vec<EventKey> = Vec::new();
        let mut okeys: Vec<u64> = Vec::new();
        let mut next_payload = 0u32;

        for op in ops {
            match op {
                HeapOp::Schedule { dt } => {
                    let at = SimTime::from_ps(eng.now().as_ps() + dt);
                    let payload = next_payload;
                    next_payload += 1;
                    keys.push(eng.schedule(at, payload));
                    okeys.push(oracle.schedule(at, payload));
                }
                HeapOp::Cancel { pick } => {
                    if keys.is_empty() {
                        continue;
                    }
                    let i = pick % keys.len();
                    let a = eng.cancel(keys[i]);
                    let b = oracle.cancel(okeys[i]);
                    prop_assert_eq!(a, b, "cancel liveness diverged at key {}", i);
                }
                HeapOp::Reschedule { pick, dt } => {
                    if keys.is_empty() {
                        continue;
                    }
                    let i = pick % keys.len();
                    let at = SimTime::from_ps(eng.now().as_ps() + dt);
                    let a = eng.reschedule(keys[i], at);
                    let b = oracle.reschedule(okeys[i], at);
                    prop_assert_eq!(a, b.is_some(), "reschedule liveness diverged at key {}", i);
                    if let Some(nk) = b {
                        okeys[i] = nk;
                    }
                }
                HeapOp::Pop => {
                    let a = eng.pop();
                    let b = oracle.pop();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(eng.now(), oracle.now);
                }
            }
        }

        // Drain both queues: delivery order (and therefore same-instant
        // seq ordering) must agree to the end.
        loop {
            let a = eng.pop();
            let b = oracle.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Seq parity: reschedule consumes exactly one sequence number,
        // like the cancel+schedule pair it replaces.
        let stats = eng.stats();
        prop_assert_eq!(stats.scheduled + stats.rescheduled, oracle.next_seq);
        prop_assert_eq!(stats.delivered + stats.cancelled, stats.scheduled);
    }
}

/// The checked-in regression seeds must actually load at test time —
/// this is what makes the replay-before-novel-cases guarantee real in
/// CI rather than an aspiration (a wrong path or format would silently
/// replay nothing).
#[test]
fn persisted_regression_seeds_load_and_replay() {
    let seeds = proptest::persistence::load_regressions(file!());
    assert!(
        seeds.len() >= 3,
        "expected the checked-in cc entries next to this file, got {seeds:?}"
    );
    // The 16-hex entry is an exact seed; its value is pinned here so a
    // format change in the parser cannot silently remap every entry.
    assert!(
        seeds.contains(&0xb17e),
        "exact-seed entry cc 000000000000b17e must parse verbatim: {seeds:?}"
    );
    // Entries are deterministic: loading twice gives the same seeds.
    assert_eq!(seeds, proptest::persistence::load_regressions(file!()));
}
