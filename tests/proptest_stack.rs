//! Property-based tests over the whole stack: random task mixes must
//! always complete — no deadlock, no lost tasks, no protocol panic — and
//! conservation laws must hold.
//!
//! # Regressions
//!
//! `proptest_stack.proptest-regressions` (sibling of this file) holds
//! `cc` seed entries that replay before any novel case, for every test
//! in this file. A failing case prints the exact `cc` line to append;
//! see the format notes at the top of the regressions file. CI floors
//! the per-block case counts with `PROPTEST_CASES` (ci.sh), so the
//! trimmed local counts below still get breadth on every push.

use pagoda::prelude::*;
use proptest::prelude::*;

/// An arbitrary valid narrow task.
fn arb_task() -> impl Strategy<Value = TaskDesc> {
    (
        1u32..=992,      // threads
        0u64..400_000,   // instrs per warp
        prop::bool::ANY, // sync
        0u32..=4,        // smem in 8KB units
        0u64..32_768,    // input bytes
        0u64..32_768,    // output bytes
    )
        .prop_map(|(threads, instrs, sync, smem8k, inb, outb)| {
            let work = if sync && instrs > 0 {
                WarpWork::phased(instrs, 3, 8.0)
            } else {
                WarpWork::compute(instrs, 8.0)
            };
            let mut t = TaskDesc::uniform(threads, work);
            t.smem_per_tb = smem8k * 8 * 1024;
            t.input_bytes = inb;
            t.output_bytes = outb;
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full co-simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn pagoda_completes_any_task_mix(tasks in prop::collection::vec(arb_task(), 1..60)) {
        let n = tasks.len() as u64;
        let r = run_pagoda(PagodaConfig::default(), &tasks);
        prop_assert_eq!(r.tasks, n);
        prop_assert!(r.compute_done.as_ps() <= r.makespan.as_ps());
    }

    #[test]
    fn hyperq_completes_any_task_mix(tasks in prop::collection::vec(arb_task(), 1..60)) {
        let r = run_hyperq(&HyperQConfig::default(), &tasks);
        prop_assert_eq!(r.tasks, tasks.len() as u64);
    }

    #[test]
    fn pagoda_makespan_is_monotone_in_prefixes(tasks in prop::collection::vec(arb_task(), 2..40)) {
        // Running a prefix of the task list can never take (much) longer
        // than the full list. "Much": the prefix's final task relies on
        // the timeout-driven flush (§4.2.2) — a read-check-write over
        // PCIe retried on 20 us polling ticks — while the full run's
        // extra tasks advance the pipeline for free, so the prefix can
        // legitimately trail by a handful of polling periods.
        let half = tasks.len() / 2;
        let full = run_pagoda(PagodaConfig::default(), &tasks);
        let part = run_pagoda(PagodaConfig::default(), &tasks[..half.max(1)]);
        let slack = desim::Dur::from_us(200);
        prop_assert!(
            part.makespan.as_ps() <= full.makespan.as_ps() + slack.as_ps(),
            "prefix {} vs full {}", part.makespan, full.makespan
        );
    }

    #[test]
    fn cpu_model_is_additive(tasks in prop::collection::vec(arb_task(), 1..50)) {
        // Sequential makespan equals the sum of task times *at the
        // single-core rate* (one core alone is not bandwidth-capped).
        let seq = run_sequential(&CpuConfig::default(), &tasks);
        let one_core = CpuConfig { cores: 1, ..CpuConfig::default() };
        let sum: f64 = tasks
            .iter()
            .map(|t| baselines::cpu::cpu_task_time(&one_core, t).as_secs_f64())
            .sum();
        let diff = (seq.makespan.as_secs_f64() - sum).abs();
        prop_assert!(diff < 1e-9, "makespan {} vs sum {}", seq.makespan.as_secs_f64(), sum);
    }
}

/// The checked-in regression seeds must actually load at test time —
/// this is what makes the replay-before-novel-cases guarantee real in
/// CI rather than an aspiration (a wrong path or format would silently
/// replay nothing).
#[test]
fn persisted_regression_seeds_load_and_replay() {
    let seeds = proptest::persistence::load_regressions(file!());
    assert!(
        seeds.len() >= 3,
        "expected the checked-in cc entries next to this file, got {seeds:?}"
    );
    // The 16-hex entry is an exact seed; its value is pinned here so a
    // format change in the parser cannot silently remap every entry.
    assert!(
        seeds.contains(&0xb17e),
        "exact-seed entry cc 000000000000b17e must parse verbatim: {seeds:?}"
    );
    // Entries are deterministic: loading twice gives the same seeds.
    assert_eq!(seeds, proptest::persistence::load_regressions(file!()));
}
