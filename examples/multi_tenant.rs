//! Multi-tenant serving demo: three tenants with different arrival
//! shapes, QoS needs, and deadlines share one Pagoda runtime through the
//! `pagoda-serve` front-end.
//!
//! * `packets` — a latency-sensitive 3DES pipeline, steady Poisson
//!   arrivals, 1.5 ms deadline, weight 4;
//! * `tiles`   — a bursty Mandelbrot tenant (2-state MMPP), weight 2;
//! * `batch`   — best-effort matrix multiplies, weight 1, happy to be
//!   shed under pressure (small queue budget).
//!
//! The weighted-fair scheduler keeps `packets` responsive through
//! `tiles`' bursts while `batch` soaks up leftover table capacity.
//! Prints per-tenant admission/latency tables and writes a
//! Chrome-tracing timeline with one span track per task/tenant plus
//! per-SMM resource counter tracks (free warp slots, free smem, live
//! table entries), captured through the `pagoda-obs` recorder.
//!
//! Run with `cargo run --release --example multi_tenant`. Two optional
//! flags scale the scenario out:
//!
//! * `--devices N` — serve the same mix on an N-device
//!   `pagoda-cluster` fleet (least-outstanding placement) instead of a
//!   single runtime, and report the per-device fleet breakdown;
//! * `--skew S` — reweight the tenants' arrival rates by a Zipf
//!   distribution with exponent `S` (aggregate rate preserved), so the
//!   head tenant dominates and the schedulers earn their keep;
//! * `--prof DIR` — decompose every task's sojourn into critical-path
//!   phases with `pagoda-prof`, print the phase table and per-tenant
//!   SLO verdicts, and write `DIR/prof.prom` (Prometheus text
//!   exposition) plus `DIR/prof.folded` (flamegraph folded stacks).

use pagoda::prelude::*;

fn main() {
    let mut devices = 1usize;
    let mut skew = 0.0f64;
    let mut prof_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices needs a positive integer");
                assert!(devices >= 1, "--devices needs a positive integer");
            }
            "--skew" => {
                skew = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--skew needs a Zipf exponent (e.g. 1.2)");
                assert!(skew >= 0.0, "--skew must be non-negative");
            }
            "--prof" => {
                prof_dir = Some(args.next().expect("--prof needs a directory").into());
            }
            other => panic!("unknown argument {other} (try --devices N / --skew S / --prof DIR)"),
        }
    }

    let mut packets = TenantSpec::new("packets", Bench::Des3, 5.0e5);
    packets.weight = 4;
    packets.deadline = Some(Dur::from_us(1_500));
    packets.queue_cap = 128;
    // The deadline is per-task best effort; the SLO is the aggregate
    // promise the profiler audits: 99% of packets under 1.5 ms.
    packets.slo = Some(SloSpec::p99_us(1_500));

    let mut tiles = TenantSpec::new("tiles", Bench::Mb, 2.5e5);
    tiles.weight = 2;
    tiles.queue_cap = 96;
    tiles.arrival = ArrivalSpec::Mmpp {
        calm_rate_per_s: 1.2e5,
        burst_rate_per_s: 8.0e5,
        mean_calm_us: 400.0,
        mean_burst_us: 120.0,
    };

    let mut batch = TenantSpec::new("batch", Bench::Mm, 1.0e5);
    batch.weight = 1;
    batch.queue_cap = 16;

    let mut tenants = vec![packets, tiles, batch];
    if skew > 0.0 {
        // Zipf-reweight the mean rates by tenant rank, preserving the
        // aggregate offered load: rank 1 takes the head of the curve.
        let agg: f64 = tenants.iter().map(|t| t.arrival.mean_rate_per_s()).sum();
        let weights: Vec<f64> = (1..=tenants.len())
            .map(|r| 1.0 / (r as f64).powf(skew))
            .collect();
        let wsum: f64 = weights.iter().sum();
        for (t, w) in tenants.iter_mut().zip(&weights) {
            let target = agg * w / wsum;
            t.arrival = t.arrival.scaled(target / t.arrival.mean_rate_per_s());
        }
    }

    let mut cfg = ServeConfig::new(tenants, Policy::WeightedFair);
    cfg.tasks_per_tenant = 1024;
    cfg.mix = if skew > 0.0 {
        format!("demo-zipf{skew}")
    } else {
        "demo".into()
    };

    // Record the whole stack — task lifecycles, admission counters,
    // per-SMM resource timelines — through one recorder.
    let (obs, recorder) = Obs::recording();
    cfg.obs = obs;

    let fleet_rep;
    let out = if devices > 1 {
        let mut fleet = ClusterHandle::new(ClusterConfig::uniform(devices))
            .expect("uniform fleet config is valid");
        let out = serve_on(&cfg, &mut fleet).expect("valid serving config");
        fleet_rep = Some(fleet.report());
        out
    } else {
        fleet_rep = None;
        serve(&cfg).expect("valid serving config")
    };
    let r = &out.report;

    println!(
        "served {} tenants under {} for {:.1} ms of simulated time",
        r.tenants.len(),
        r.policy,
        r.makespan_us / 1e3
    );
    println!(
        "throughput {:.1} k tasks/s, mean TaskTable occupancy {:.1}%, warp occupancy {:.1}%\n",
        r.throughput_per_s / 1e3,
        100.0 * r.avg_slot_occupancy,
        100.0 * r.avg_warp_occupancy
    );

    println!(
        "{:>8} {:>3} {:>8} {:>8} {:>6} {:>6} {:>8} {:>10} {:>10} {:>10}",
        "tenant", "w", "offered", "admit", "shed", "late", "maxq", "p50(us)", "p95(us)", "p99(us)"
    );
    for t in &r.tenants {
        println!(
            "{:>8} {:>3} {:>8} {:>8} {:>6} {:>6} {:>8} {:>10.1} {:>10.1} {:>10.1}",
            t.tenant,
            t.weight,
            t.offered,
            t.admitted,
            t.shed,
            t.deadline_missed,
            t.max_queue_depth,
            t.p50_sojourn_us,
            t.p95_sojourn_us,
            t.p99_sojourn_us
        );
    }

    if let Some(rep) = &fleet_rep {
        println!(
            "\nfleet of {}: {} placements ({} off-affinity), {} completed, warp occupancy {:.1}%",
            rep.devices.len(),
            rep.placements,
            rep.off_affinity,
            rep.completed,
            100.0 * rep.avg_warp_occupancy
        );
        for d in &rep.devices {
            println!(
                "  device {}: spawned {:>6}  completed {:>6}  occupancy {:.1}%",
                d.device,
                d.spawned,
                d.completed,
                100.0 * d.avg_running_occupancy
            );
        }
    }

    let buf = recorder.snapshot();
    let path = std::env::temp_dir().join("pagoda_multi_tenant_trace.json");
    let file = std::fs::File::create(&path).expect("create trace file");
    let mut w = std::io::BufWriter::new(file);
    pagoda_obs::write_chrome_trace(&buf, &mut w).expect("write trace");
    println!(
        "\ntimeline of {} spawned tasks + {} per-SMM resource samples written to {}",
        out.traces.len(),
        buf.smm.len(),
        path.display()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");
    println!(
        "recorder counters: admitted={}, shed={}, scheduler decisions={}",
        buf.counter(Counter::AdmissionAdmitted),
        buf.counter(Counter::AdmissionShed),
        buf.counter(Counter::SchedulerDecisions),
    );

    for s in &r.slo {
        println!(
            "SLO {}: p{:.2} under {} us — {} of {} tasks late ({} ppm), burn rate {:.3}, {}",
            r.tenants[s.tenant as usize].tenant,
            s.spec.objective_ppm as f64 / 1e4,
            s.spec.latency_ps / 1_000_000,
            s.violations,
            s.tasks,
            s.violation_ppm,
            s.burn_rate_milli as f64 / 1e3,
            if s.met { "met" } else { "MISSED" },
        );
    }

    if let Some(dir) = prof_dir {
        let prof = ProfReport::from_buffer(&buf);
        // The telescoping contract: per group, the seven phases
        // partition the summed sojourn exactly.
        for g in &prof.groups {
            let phase_sum: u64 = Phase::ALL.iter().map(|&p| g.phase_total_ps(p)).sum();
            assert_eq!(
                phase_sum,
                g.sojourn.sum(),
                "phase decomposition must reconcile with sojourn in group {}",
                g.label
            );
        }

        let summary = prof.summary();
        println!(
            "\ncritical-path decomposition ({} completed tasks):",
            prof.total().tasks
        );
        println!(
            "{:>12} {:>12} {:>10} {:>10} {:>7}",
            "phase", "total(us)", "mean(us)", "p99(us)", "share"
        );
        let wall: u64 = prof.total().sojourn.sum();
        for p in &summary.groups[0].phases {
            println!(
                "{:>12} {:>12.1} {:>10.2} {:>10.2} {:>6.1}%",
                p.phase,
                p.total_ps as f64 / 1e6,
                p.mean_ps as f64 / 1e6,
                p.p99_ps as f64 / 1e6,
                100.0 * p.total_ps as f64 / wall.max(1) as f64,
            );
        }

        std::fs::create_dir_all(&dir).expect("create prof dir");
        let prom_path = dir.join("prof.prom");
        let mut prom = Vec::new();
        write_prometheus(&prof, &mut prom).expect("render exposition");
        check_exposition(std::str::from_utf8(&prom).expect("exposition is utf-8"))
            .expect("exposition parses");
        std::fs::write(&prom_path, &prom).expect("write prof.prom");
        let folded_path = dir.join("prof.folded");
        let mut folded = Vec::new();
        write_folded(&prof, &mut folded).expect("render folded stacks");
        std::fs::write(&folded_path, &folded).expect("write prof.folded");
        println!(
            "profile exports written to {} and {} ({} groups)",
            prom_path.display(),
            folded_path.display(),
            prof.groups.len()
        );
    }
}
