//! Surveillance hub: the paper's DCT scenario (Table 4).
//!
//! An online surveillance system gathers frames from many cameras and
//! compresses them concurrently; each frame's 8×8-block DCT is one narrow
//! task. This example runs the real transform on one frame (with
//! energy-conservation and round-trip checks), then compares runtimes on
//! the full stream — including the shared-memory ablation of Table 5
//! (DCT is copy-bound, so GPU wins are modest; smem staging still helps
//! compute time).
//!
//! Run with `cargo run --release --example surveillance_dct`.

use pagoda::prelude::*;
use workloads::dct;

/// `submit()` with the explicit full-table retry loop: refresh the CPU's
/// view of the TaskTable (lazy aggregate copy-back), idle one wait
/// timeout if still full, and retry.
fn submit_blocking(rt: &mut PagodaRuntime, t: TaskDesc) {
    let mut t = t;
    loop {
        match rt.submit(t) {
            Ok(_) => return,
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                t = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
}

fn main() {
    // --- the actual transform on one camera frame ------------------------
    let dim = dct::DIM;
    let frame: Vec<f32> = (0..dim * dim)
        .map(|i| ((i % 256) as f32 - 128.0) * 0.5)
        .collect();
    let coeffs = dct::dct_image(&frame, dim);
    let e_in: f32 = frame.iter().map(|v| v * v).sum();
    let e_out: f32 = coeffs.iter().map(|v| v * v).sum();
    println!(
        "frame {}x{}: DCT energy ratio {:.6} (Parseval)",
        dim,
        dim,
        e_out / e_in
    );

    // --- the camera farm --------------------------------------------------
    let n = 8192;
    println!("compressing {n} frames from simulated camera streams");
    for use_smem in [false, true] {
        let opts = GenOpts {
            use_smem,
            ..GenOpts::default()
        };
        let tasks = workloads::Bench::Dct.tasks(n, &opts);
        let mut rt = PagodaRuntime::titan_x();
        for t in &tasks {
            submit_blocking(&mut rt, t.clone());
        }
        rt.wait_all();
        let r = rt.report();
        let hq = run_hyperq(&HyperQConfig::default(), &tasks);
        println!(
            "Pagoda {}  makespan {}  compute-done {}  vs HyperQ makespan {}",
            if use_smem { "(smem)" } else { "(plain)" },
            r.makespan,
            r.compute_done,
            hq.makespan,
        );
    }
    println!("note: DCT moves 64 KB per frame each way; Table 3 marks it 81% copy-bound,");
    println!("so end-to-end wins are small even though smem lowers the kernels' CPI.");
}
