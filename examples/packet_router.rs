//! Packet router: the paper's 3DES scenario (Table 4) end to end.
//!
//! A router receives packets of wildly varying size (NetBench-style
//! 2 KB – 64 KB) and encrypts each with Triple-DES as it arrives — each
//! packet is one narrow task. This example does the *real* cryptography
//! on the host for a sample of packets (with a known-answer check), then
//! pushes the full stream through Pagoda and compares against running the
//! same stream on the 20-core CPU model.
//!
//! Run with `cargo run --release --example packet_router`.

use pagoda::prelude::*;
use workloads::des3;

/// `submit()` with the explicit full-table retry loop: refresh the CPU's
/// view of the TaskTable (lazy aggregate copy-back), idle one wait
/// timeout if still full, and retry.
fn submit_blocking(rt: &mut PagodaRuntime, t: TaskDesc) {
    let mut t = t;
    loop {
        match rt.submit(t) {
            Ok(_) => return,
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                t = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
}

fn main() {
    // --- the actual cipher, on a sample packet ---------------------------
    let (k1, k2, k3) = (0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x89ABCDEF01234567);
    let packet: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    let cipher = des3::encrypt_packet(&packet, k1, k2, k3);
    assert_ne!(cipher, packet);
    // Single-DES known-answer vector guards the implementation.
    assert_eq!(
        des3::des_encrypt(0x0123456789ABCDEF, 0x133457799BBCDFF1),
        0x85E813540F0AB405
    );
    println!(
        "3DES sanity: {} byte packet encrypted, first block {:02x?}",
        cipher.len(),
        &cipher[..8]
    );

    // --- the router under load ------------------------------------------
    let n = 8192;
    let opts = GenOpts::default();
    let tasks = des3::tasks(n, &opts);
    let total_bytes: u64 = tasks.iter().map(|t| t.input_bytes).sum();
    println!(
        "routing {n} packets ({:.1} MB total, sizes {}-{} B)",
        total_bytes as f64 / 1e6,
        tasks.iter().map(|t| t.input_bytes).min().unwrap(),
        tasks.iter().map(|t| t.input_bytes).max().unwrap(),
    );

    let mut rt = PagodaRuntime::titan_x();
    for t in &tasks {
        submit_blocking(&mut rt, t.clone());
    }
    rt.wait_all();
    let gpu = rt.report();

    let cpu = run_pthreads(&CpuConfig::default(), &tasks);

    println!("--- results ---");
    println!(
        "Pagoda   : {} ({:.2} Gbit/s line rate)",
        gpu.makespan,
        total_bytes as f64 * 8.0 / gpu.makespan.as_secs_f64() / 1e9
    );
    println!(
        "20-core  : {} ({:.2} Gbit/s)",
        cpu.makespan,
        total_bytes as f64 * 8.0 / cpu.makespan.as_secs_f64() / 1e9
    );
    println!(
        "Pagoda speedup over PThreads: {:.2}x; mean packet latency {}",
        RunSummary::from(gpu).speedup_over(&cpu),
        gpu.mean_task_latency
    );
}
