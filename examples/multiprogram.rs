//! Multi-programmed environment: the paper's MPE benchmark (Table 4).
//!
//! Four applications with different personalities — 3DES and Mandelbrot
//! (irregular), FilterBank (needs `syncBlock`), MatrixMul (wants shared
//! memory) — share one GPU, their tasks arriving interleaved as if from
//! independent programs. Batch systems collapse here (a batch's time is
//! its slowest member's); Pagoda's warp-granularity scheduling keeps
//! every application flowing.
//!
//! Run with `cargo run --release --example multiprogram`.

use pagoda::prelude::*;
use workloads::mpe;

/// `submit()` with the explicit full-table retry loop: refresh the CPU's
/// view of the TaskTable (lazy aggregate copy-back), idle one wait
/// timeout if still full, and retry.
fn submit_blocking(rt: &mut PagodaRuntime, t: TaskDesc) {
    let mut t = t;
    loop {
        match rt.submit(t) {
            Ok(_) => return,
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                t = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
}

fn main() {
    let n = 8192; // 2048 tasks from each of the four applications
    let opts = GenOpts {
        use_smem: true, // MM contributes its shared-memory variant
        ..GenOpts::default()
    };
    let tasks = mpe::tasks(n, &opts);
    let sync_tasks = tasks.iter().filter(|t| t.sync).count();
    let smem_tasks = tasks.iter().filter(|t| t.smem_per_tb > 0).count();
    println!(
        "MPE mix: {n} tasks ({} need syncBlock, {} use shared memory)",
        sync_tasks, smem_tasks
    );

    // Pagoda with everything enabled.
    let mut rt = PagodaRuntime::titan_x();
    for t in &tasks {
        submit_blocking(&mut rt, t.clone());
    }
    rt.wait_all();
    let pagoda = rt.report();

    // GeMTC must run without shared memory (unsupported there).
    let plain = mpe::tasks(n, &GenOpts::default());
    let gm_cfg = GemtcConfig {
        worker_threads: plain.iter().map(|t| t.threads_per_tb).max().unwrap(),
        ..GemtcConfig::default()
    };
    let gemtc = run_gemtc(&gm_cfg, &plain);
    let hyperq = run_hyperq(&HyperQConfig::default(), &tasks);
    let pth = run_pthreads(&CpuConfig::default(), &tasks);

    println!("--- results ---");
    println!("Pagoda        : {}", pagoda.makespan);
    println!("CUDA-HyperQ   : {}", hyperq.makespan);
    println!(
        "GeMTC         : {}  (batch barrier pays for every straggler)",
        gemtc.makespan
    );
    println!("20-core CPU   : {}", pth.makespan);
    let p: RunSummary = pagoda.into();
    println!(
        "Pagoda speedups: {:.2}x over HyperQ, {:.2}x over GeMTC, {:.2}x over PThreads",
        p.speedup_over(&hyperq),
        p.speedup_over(&gemtc),
        p.speedup_over(&pth),
    );
}
