//! Four-device fleet quickstart: route a batch of narrow tasks across a
//! `pagoda-cluster` fleet, kill one device mid-run, and watch the
//! resubmit policy replay its stranded work onto the survivors.
//!
//! Demonstrates the pieces DESIGN.md §12 describes:
//!
//! * `ClusterConfig::uniform(4)` — four independent simulated Titan Xs
//!   (own PCIe link, TaskTable, MasterKernel each) under one fleet clock;
//! * power-of-two-choices placement with a deterministic seed;
//! * a `Kill` fault injected at 60 us with `RetryPolicy::Resubmit`;
//! * cluster counters surfaced through the `pagoda-obs` recorder.
//!
//! Run with `cargo run --release --example cluster`.

use pagoda::prelude::*;

fn main() {
    let mut cfg = ClusterConfig::uniform(4);
    cfg.placement = Placement::PowerOfTwo;
    cfg.seed = 0xf1ee7;
    cfg.retry = RetryPolicy::Resubmit { max_attempts: 4 };
    // Device 2 dies 60 us in — with ~230 us tasks, plenty is in flight.
    cfg.faults = vec![FaultSpec {
        at: SimTime::from_us(60),
        device: 2,
        kind: FaultKind::Kill,
    }];

    let mut fleet = ClusterHandle::new(cfg).expect("uniform config is valid");
    let (obs, recorder) = Obs::recording();
    fleet.attach_obs(obs);

    // Closed-loop batch: submit until the fleet says Full, then give it
    // simulated time and retry — same shape as the single-runtime loop.
    const TASKS: usize = 256;
    let mut keys = Vec::with_capacity(TASKS);
    while keys.len() < TASKS {
        let desc = TaskDesc::uniform(96, WarpWork::compute(500_000, 8.0));
        match fleet.submit(desc) {
            Ok(k) => keys.push(k),
            Err(SubmitError::Full(_)) => {
                fleet.sync();
                if !fleet.capacity().has_room() {
                    let t = fleet.now() + Dur::from_us(20);
                    fleet.advance_to(t);
                }
            }
            Err(e) => panic!("task rejected: {e}"),
        }
    }
    fleet.wait_all();

    let rep = fleet.report();
    println!(
        "fleet of {} finished {} tasks in {} (warp occupancy {:.1}%)",
        rep.devices.len(),
        rep.completed,
        rep.makespan,
        100.0 * rep.avg_warp_occupancy
    );
    println!(
        "kills {}  resubmits {}  lost {}  off-affinity {} of {} placements\n",
        rep.kills, rep.resubmits, rep.tasks_lost, rep.off_affinity, rep.placements
    );

    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>10}",
        "device", "alive", "spawned", "completed", "occupancy"
    );
    for d in &rep.devices {
        println!(
            "{:>6} {:>6} {:>8} {:>10} {:>9.1}%",
            d.device,
            d.alive,
            d.spawned,
            d.completed,
            100.0 * d.avg_running_occupancy
        );
    }

    assert_eq!(rep.tasks_lost, 0, "resubmit policy must lose nothing");
    assert!(keys
        .iter()
        .all(|&k| matches!(fleet.status(k), Ok(TaskStatus::Done))));

    let buf = recorder.snapshot();
    println!(
        "\nrecorder: {} placements, {} resubmits, {} device kill(s), {} device samples",
        buf.counter(Counter::ClusterPlacements),
        buf.counter(Counter::ClusterResubmits),
        buf.counter(Counter::ClusterDeviceKills),
        buf.devices.len()
    );
}
