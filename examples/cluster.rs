//! Four-device fleet quickstart: route a batch of narrow tasks across a
//! `pagoda-cluster` fleet, kill one device mid-run, and watch the
//! resubmit policy replay its stranded work onto the survivors.
//!
//! Demonstrates the pieces DESIGN.md §12 describes:
//!
//! * `ClusterConfig::uniform(4)` — four independent simulated Titan Xs
//!   (own PCIe link, TaskTable, MasterKernel each) under one fleet clock;
//! * power-of-two-choices placement with a deterministic seed;
//! * a `Kill` fault injected at 60 us with `RetryPolicy::Resubmit`;
//! * cluster counters surfaced through the `pagoda-obs` recorder.
//!
//! Run with `cargo run --release --example cluster`. Pass `--prof DIR`
//! to decompose every task's fleet sojourn into critical-path phases
//! (per-device groups included, courtesy of the routing stream) and
//! write `DIR/prof.prom` + `DIR/prof.folded`.

use pagoda::prelude::*;

fn main() {
    let mut prof_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--prof" => {
                prof_dir = Some(args.next().expect("--prof needs a directory").into());
            }
            other => panic!("unknown argument {other} (try --prof DIR)"),
        }
    }

    let mut cfg = ClusterConfig::uniform(4);
    cfg.placement = Placement::PowerOfTwo;
    cfg.seed = 0xf1ee7;
    cfg.retry = RetryPolicy::Resubmit { max_attempts: 4 };
    // Device 2 dies 60 us in — with ~230 us tasks, plenty is in flight.
    cfg.faults = vec![FaultSpec {
        at: SimTime::from_us(60),
        device: 2,
        kind: FaultKind::Kill,
    }];

    let mut fleet = ClusterHandle::new(cfg).expect("uniform config is valid");
    let (obs, recorder) = Obs::recording();
    fleet.attach_obs(obs);

    // Closed-loop batch: submit until the fleet says Full, then give it
    // simulated time and retry — same shape as the single-runtime loop.
    const TASKS: usize = 256;
    let mut keys = Vec::with_capacity(TASKS);
    while keys.len() < TASKS {
        let desc = TaskDesc::uniform(96, WarpWork::compute(500_000, 8.0));
        match fleet.submit(desc) {
            Ok(k) => keys.push(k),
            Err(SubmitError::Full(_)) => {
                fleet.sync();
                if !fleet.capacity().has_room() {
                    let t = fleet.now() + Dur::from_us(20);
                    fleet.advance_to(t);
                }
            }
            Err(e) => panic!("task rejected: {e}"),
        }
    }
    fleet.wait_all();

    let rep = fleet.report();
    println!(
        "fleet of {} finished {} tasks in {} (warp occupancy {:.1}%)",
        rep.devices.len(),
        rep.completed,
        rep.makespan,
        100.0 * rep.avg_warp_occupancy
    );
    println!(
        "kills {}  resubmits {}  lost {}  off-affinity {} of {} placements\n",
        rep.kills, rep.resubmits, rep.tasks_lost, rep.off_affinity, rep.placements
    );

    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>10}",
        "device", "alive", "spawned", "completed", "occupancy"
    );
    for d in &rep.devices {
        println!(
            "{:>6} {:>6} {:>8} {:>10} {:>9.1}%",
            d.device,
            d.alive,
            d.spawned,
            d.completed,
            100.0 * d.avg_running_occupancy
        );
    }

    assert_eq!(rep.tasks_lost, 0, "resubmit policy must lose nothing");
    assert!(keys
        .iter()
        .all(|&k| matches!(fleet.status(k), Ok(TaskStatus::Done))));

    let buf = recorder.snapshot();
    println!(
        "\nrecorder: {} placements, {} resubmits, {} device kill(s), {} device samples",
        buf.counter(Counter::ClusterPlacements),
        buf.counter(Counter::ClusterResubmits),
        buf.counter(Counter::ClusterDeviceKills),
        buf.devices.len()
    );

    if let Some(dir) = prof_dir {
        let prof = ProfReport::from_buffer(&buf);
        // The telescoping contract, fleet edition: phases partition the
        // summed sojourn in every group, dead device and resubmits
        // notwithstanding.
        for g in &prof.groups {
            let phase_sum: u64 = Phase::ALL.iter().map(|&p| g.phase_total_ps(p)).sum();
            assert_eq!(
                phase_sum,
                g.sojourn.sum(),
                "phase decomposition must reconcile with sojourn in group {}",
                g.label
            );
        }

        println!("\ncritical-path decomposition by group:");
        for g in &prof.summary().groups {
            let execution = g
                .phases
                .iter()
                .find(|p| p.phase == "execution")
                .map_or(0, |p| p.total_ps);
            println!(
                "{:>10}: {:>4} tasks, p99 sojourn {:>8.1} us, execution share {:>5.1}%",
                g.label,
                g.tasks,
                g.sojourn.p99_ps as f64 / 1e6,
                100.0 * execution as f64
                    / g.phases.iter().map(|p| p.total_ps).sum::<u64>().max(1) as f64,
            );
        }

        std::fs::create_dir_all(&dir).expect("create prof dir");
        let mut prom = Vec::new();
        write_prometheus(&prof, &mut prom).expect("render exposition");
        check_exposition(std::str::from_utf8(&prom).expect("exposition is utf-8"))
            .expect("exposition parses");
        std::fs::write(dir.join("prof.prom"), &prom).expect("write prof.prom");
        let mut folded = Vec::new();
        write_folded(&prof, &mut folded).expect("render folded stacks");
        std::fs::write(dir.join("prof.folded"), &folded).expect("write prof.folded");
        println!(
            "profile exports written to {} ({} groups)",
            dir.display(),
            prof.groups.len()
        );
    }
}
