//! Pipeline inspection: where do narrow tasks spend their time?
//!
//! Runs a burst of MPE tasks through Pagoda, then breaks every task's
//! life into the paper's §4.3 pipeline stages (spawn → entry copy →
//! chain/flush → pSched dispatch → execution → output copy), printing
//! stage-duration percentiles and writing a Chrome-tracing/Perfetto file
//! you can open at `chrome://tracing`.
//!
//! Run with `cargo run --release --example inspect_trace`.

use pagoda::prelude::*;
use pagoda_core::write_chrome_trace;
use workloads::mpe;

fn pct(sorted: &[f64], p: f64) -> f64 {
    sorted[(p * (sorted.len() - 1) as f64).round() as usize]
}

/// `submit()` with the explicit full-table retry loop: refresh the CPU's
/// view of the TaskTable (lazy aggregate copy-back), idle one wait
/// timeout if still full, and retry.
fn submit_blocking(rt: &mut PagodaRuntime, t: TaskDesc) {
    let mut t = t;
    loop {
        match rt.submit(t) {
            Ok(_) => return,
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                t = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
}

fn main() {
    let n = 2048;
    let tasks = mpe::tasks(n, &GenOpts::default());
    let mut rt = PagodaRuntime::titan_x();
    for t in &tasks {
        submit_blocking(&mut rt, t.clone());
    }
    rt.wait_all();

    let traces = rt.traces();
    println!("traced {} tasks through the Pagoda pipeline", traces.len());
    println!(
        "{:>22} {:>10} {:>10} {:>10}",
        "stage", "p50 us", "p90 us", "p99 us"
    );
    for stage in [
        "spawn→visible",
        "visible→schedulable",
        "schedulable→exec",
        "exec→done",
        "done→output",
    ] {
        let mut durs: Vec<f64> = traces
            .iter()
            .flat_map(|t| t.phases())
            .filter(|(name, _, _)| *name == stage)
            .map(|(_, s, e)| (e - s).as_us_f64())
            .collect();
        if durs.is_empty() {
            continue;
        }
        durs.sort_by(f64::total_cmp);
        println!(
            "{:>22} {:>10.2} {:>10.2} {:>10.2}",
            stage,
            pct(&durs, 0.5),
            pct(&durs, 0.9),
            pct(&durs, 0.99),
        );
    }

    let path = std::env::temp_dir().join("pagoda_trace.json");
    let file = std::fs::File::create(&path).expect("create trace file");
    write_chrome_trace(&traces, std::io::BufWriter::new(file)).expect("write trace");
    println!("\nChrome-tracing file written to {} —", path.display());
    println!("open chrome://tracing (or ui.perfetto.dev) and load it; rows are MTB columns.");

    let lats: Vec<f64> = traces
        .iter()
        .filter_map(|t| t.latency().map(|d| d.as_us_f64()))
        .collect();
    let mut sorted = lats.clone();
    sorted.sort_by(f64::total_cmp);
    println!(
        "\nend-to-end task latency: p50 {:.1} us, p99 {:.1} us over {} tasks",
        pct(&sorted, 0.5),
        pct(&sorted, 0.99),
        sorted.len()
    );
}
