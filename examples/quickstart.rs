//! Quickstart: spawn narrow tasks onto Pagoda, wait, read the report.
//!
//! Mirrors the host-code structure of the paper's Fig. 1a: create the
//! runtime (the MasterKernel starts occupying the GPU), spawn tasks
//! asynchronously as they "arrive", synchronize, inspect.
//!
//! Run with `cargo run --release --example quickstart`.

use pagoda::prelude::*;

fn main() {
    // Boot Pagoda on the paper's Maxwell Titan X. The MasterKernel's 48
    // MTBs (2 per SMM, 1024 threads each) now hold 100 % of the device.
    let mut rt = PagodaRuntime::titan_x();

    // A narrow task: 128 threads in one threadblock — 0.5 % of the GPU.
    // Running one at a time would leave 99.5 % of the machine idle; the
    // whole point of Pagoda is to run hundreds of these concurrently.
    let make_task = || {
        let mut t = TaskDesc::uniform(128, WarpWork::compute(400_000, 8.0));
        t.input_bytes = 4 * 1024; // copied inside the TaskTable entry
        t.output_bytes = 4 * 1024; // copied back at completion
        t
    };

    // submit() is a non-blocking probe: 2000 spawns stream into the
    // TaskTable while earlier tasks are already being scheduled and
    // executed. When the CPU's view of the table fills (it holds 1536
    // entries), refresh it with the lazy aggregate copy-back and retry.
    let mut ids: Vec<TaskId> = Vec::with_capacity(2000);
    let mut pending = make_task();
    while ids.len() < 2000 {
        match rt.submit(pending) {
            Ok(id) => {
                ids.push(id);
                pending = make_task();
            }
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                pending = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
    println!("spawned {} tasks by host time {}", ids.len(), rt.host_now());

    // Wait for a specific task (wait), poll another (check), then drain
    // everything (waitAll) — the paper's Table 1 API.
    rt.wait(ids[0]).expect("id issued by this runtime");
    println!(
        "task {:?} done: latency {}",
        ids[0],
        rt.task_latency(ids[0]).unwrap()
    );
    let done_500 = rt.check(ids[500]).expect("id issued by this runtime");
    println!("task {:?} finished yet? {done_500}", ids[500]);
    rt.wait_all();

    let r = rt.report();
    println!("--- run report ---");
    println!("tasks completed : {}", r.tasks);
    println!("makespan        : {}", r.makespan);
    println!("mean latency    : {}", r.mean_task_latency);
    println!(
        "warp occupancy  : {:.1}% of the device's 1536 warp slots",
        r.avg_running_occupancy * 100.0
    );
    println!("PCIe busy       : H2D {}, D2H {}", r.h2d_busy, r.d2h_busy);
}
