//! Sparse LU solver: the paper's SLUD scenario (Table 4).
//!
//! A block-sparse matrix factorizes in dependency waves whose task count
//! is *not known up front* (fill-in): the case that rules out GeMTC's
//! batches and static fusion entirely, and the paper's largest run
//! (273 K tasks). This example factorizes a real dense tile (verifying
//! L·U = A), generates the symbolic wave structure for a block matrix,
//! and drives the waves through Pagoda with `waitAll` as the inter-wave
//! dependency barrier.
//!
//! Run with `cargo run --release --example sparse_solver`.

use pagoda::prelude::*;
use workloads::slud;

/// `submit()` with the explicit full-table retry loop: refresh the CPU's
/// view of the TaskTable (lazy aggregate copy-back), idle one wait
/// timeout if still full, and retry.
fn submit_blocking(rt: &mut PagodaRuntime, t: TaskDesc) {
    let mut t = t;
    loop {
        match rt.submit(t) {
            Ok(_) => return,
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                t = desc;
            }
            Err(e) => panic!("unspawnable task: {e}"),
        }
    }
}

fn main() {
    // --- real numeric factorization of one tile --------------------------
    let n = slud::TILE;
    let a: Vec<f32> = (0..n * n)
        .map(|i| {
            let (r, c) = (i / n, i % n);
            if r == c {
                n as f32 + 1.0
            } else {
                ((i % 7) as f32 - 3.0) * 0.25
            }
        })
        .collect();
    let (l, u) = slud::dense_lu(&a, n);
    let mut max_err = 0.0f32;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..=i.min(j) {
                acc += l[i * n + k] * u[k * n + j];
            }
            max_err = max_err.max((acc - a[i * n + j]).abs());
        }
    }
    println!("dense {n}x{n} tile: max |L·U - A| = {max_err:.2e}");

    // --- the block-sparse factorization as narrow-task waves -------------
    let nb = 48; // 48x48 tiles of 32x32
    let opts = GenOpts::default();
    let waves = slud::waves_as_tasks(nb, slud::DENSITY, &opts);
    let total: usize = waves.iter().map(Vec::len).sum();
    println!(
        "symbolic factorization of a {nb}x{nb} tile grid: {} tasks in {} waves \
         (count is input-dependent — GeMTC cannot run this)",
        total,
        waves.len()
    );

    let mut rt = PagodaRuntime::titan_x();
    for wave in &waves {
        for t in wave {
            submit_blocking(&mut rt, t.clone());
        }
        // Dependency barrier: the next wave needs this wave's tiles.
        rt.wait_all();
    }
    let r = rt.report();

    // CPU comparison, wave by wave.
    let cpu_ms: f64 = waves
        .iter()
        .map(|w| {
            run_pthreads(&CpuConfig::default(), w)
                .makespan
                .as_secs_f64()
                * 1e3
        })
        .sum();

    println!("--- results ---");
    println!("Pagoda: {} for {} tile tasks", r.makespan, r.tasks);
    println!("20-core PThreads (wave-synchronous): {cpu_ms:.2} ms");
    println!(
        "speedup {:.2}x; mean tile-task latency {}",
        cpu_ms / (r.makespan.as_secs_f64() * 1e3),
        r.mean_task_latency
    );
}
