#!/usr/bin/env sh
# Offline CI for the workspace: build, tests, formatting, lints.
# Everything runs against the vendored path crates in vendor/ — no
# network or registry access is required (or attempted: --offline).
set -eu

cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline

# Property-test breadth floor: blocks trim their local case counts for
# the simulator-heavy suites; CI raises every block back to at least 32
# cases (PROPTEST_CASES never lowers a block's own setting). Persisted
# *.proptest-regressions entries replay before novel cases either way —
# see tests/proptest_stack.rs for how to pin a failing case.
run env PROPTEST_CASES=32 cargo test -q --workspace --offline

# rustfmt / clippy are optional components; skip gracefully where absent.
if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --all --check
else
    echo "==> cargo fmt unavailable; skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --release --offline --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping"
fi

# Build the bench harness once up front so the smoke invocations below
# measure the benchmarks, not compilation.
run cargo build --release --offline -p pagoda-bench

# Smoke the serving benchmark: must produce deterministic curves.
run cargo run --release --offline -p pagoda-bench --bin serve_curves -- --quick --json >/dev/null

# Observability overhead gates: a disabled/null recorder may cost at
# most 5% of simulator events/sec, and profiling-on (the pagoda-prof
# tee) at most 10% (the bin exits nonzero past either gate). The real
# bounds are enforced by full-size runs and the committed BENCH_obs.json
# / BENCH_prof.json; --smoke widens them to 15%/25% because ~3 ms smoke
# reps are noise-dominated on a shared CI box. The smoke results go to
# scratch paths so CI never dirties the tree.
run cargo run --release --offline -p pagoda-bench --bin obs_overhead -- --smoke --out target/BENCH_obs_smoke.json --out-prof target/BENCH_prof_smoke.json

# Profiler smoke: serve the multi-tenant demo on a two-device fleet with
# critical-path profiling on. The example itself asserts the telescoping
# contract (phase sums reconcile with sojourns in every group) and that
# the Prometheus exposition parses; a violation panics, failing CI.
run cargo run --release --offline --example multi_tenant -- --devices 2 --prof target/prof_smoke

# Fleet scaling gate: a 4-device cluster must clear 3.2x the 1-device
# throughput (the bin exits nonzero otherwise). The committed
# BENCH_cluster.json comes from a full-size run; the smoke result goes
# to a scratch path so CI never dirties the tree.
run cargo run --release --offline -p pagoda-bench --bin cluster_scaling -- --smoke --out target/BENCH_cluster_smoke.json

# Parallel-driver gate: serial and parallel fleet drivers must be
# byte-identical (always enforced; the bin exits nonzero on mismatch),
# and on hosts with >= 4 cores the 4-device parallel run must clear 2x
# serial wall-clock. On smaller hosts the speedup is recorded but not
# gated — a 1-core box cannot speed anything up.
run cargo run --release --offline -p pagoda-bench --bin cluster_scaling -- --smoke --parallel --out target/BENCH_parallel_smoke.json

# Hot-path gate: desim queue ops/sec, end-to-end tasks/sec, and the mem
# recorder's overhead over a disabled run (the bin exits nonzero past
# any gate). The real <=12% mem bound is enforced by full-size runs and
# the committed BENCH_hotpath.json; --smoke widens it to 25% because
# ~3 ms smoke reps are noise-dominated on a shared CI box. The smoke
# result goes to a scratch path so CI never dirties the tree.
run cargo run --release --offline -p pagoda-bench --bin hotpath -- --smoke --out target/BENCH_hotpath_smoke.json

# Invariant checking (pagoda-check). Two gates, both exit nonzero on
# failure:
#
#   mutation-smoke — seeds each known bug class into the fleet and
#   asserts the checker flags every one (and that the unmutated
#   baselines stay clean). This is the test of the tests: if a checker
#   regression makes an invariant toothless, this catches it.
#
#   explore — runs the invariant-checked scenario sweep: every scenario
#   serial + parallel with the checker teed into the recorder, byte-
#   comparing the two drivers on top of the invariant verdicts. The
#   default smoke sweep is a handful of scenarios; set
#   PAGODA_CHECK_EXTENDED=1 to run the full seeds × placements ×
#   run-ahead × fault-schedule grid (the bin reads the env itself).
run cargo run --release --offline -p pagoda-check --bin pagoda_check -- mutation-smoke
run cargo run --release --offline -p pagoda-check --bin pagoda_check -- explore

echo "ci: all checks passed"
